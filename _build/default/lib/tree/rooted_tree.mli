(** Rooted trees over vertices [0 .. n-1].

    The tree experiments (Sec. 5) require all flow sources to be leaves
    and all destinations to be the root; this module provides the rooted
    view — parents, children, depths, leaves, subtree traversal — on
    which both the optimal DP and HAT operate. *)

type t

val of_parents : root:int -> int array -> t
(** [of_parents ~root parents] where [parents.(root) = -1] and every
    other vertex points at its parent.
    @raise Invalid_argument on cycles, forests, or bad roots. *)

val of_digraph : Tdmd_graph.Digraph.t -> root:int -> t
(** Roots an (undirected-link) graph at [root] by BFS.
    @raise Invalid_argument if the graph is not a tree when arc
    directions are ignored (i.e. not connected or has extra edges). *)

val size : t -> int
val root : t -> int
val parent : t -> int -> int
(** [-1] for the root. *)

val children : t -> int -> int list
val depth : t -> int -> int
(** Edges from the root (root has depth 0). *)

val is_leaf : t -> int -> bool
val leaves : t -> int list
(** Ascending vertex order.  A single-vertex tree's root counts as a
    leaf. *)

val height : t -> int
val subtree_vertices : t -> int -> int list
(** Preorder, starting with the given vertex. *)

val postorder : t -> int list
(** Children always precede their parent; ends with the root. *)

val path_to_root : t -> int -> int list
(** Vertices from the given vertex up to and including the root. *)

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Reflexive: every vertex is its own ancestor (paper's Def. 3
    convention). *)

val to_digraph : t -> Tdmd_graph.Digraph.t
(** Directed child→parent arcs (the direction flows travel). *)
