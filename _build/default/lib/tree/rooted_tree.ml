type t = {
  root : int;
  parents : int array;
  children : int list array;  (* ascending child order *)
  depths : int array;
}

let build root parents =
  let n = Array.length parents in
  if root < 0 || root >= n then invalid_arg "Rooted_tree: root out of range";
  if parents.(root) <> -1 then invalid_arg "Rooted_tree: root must have parent -1";
  let children = Array.make n [] in
  for v = n - 1 downto 0 do
    let p = parents.(v) in
    if v <> root then begin
      if p < 0 || p >= n then invalid_arg "Rooted_tree: orphan vertex";
      children.(p) <- v :: children.(p)
    end
  done;
  (* Depths via BFS from the root; also validates acyclicity/connectivity. *)
  let depths = Array.make n (-1) in
  depths.(root) <- 0;
  let q = Queue.create () in
  Queue.add root q;
  let visited = ref 1 in
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    List.iter
      (fun c ->
        depths.(c) <- depths.(v) + 1;
        incr visited;
        Queue.add c q)
      children.(v)
  done;
  if !visited <> n then invalid_arg "Rooted_tree: not a connected tree";
  { root; parents; children; depths }

let of_parents ~root parents = build root (Array.copy parents)

let of_digraph g ~root =
  let n = Tdmd_graph.Digraph.vertex_count g in
  let parents = Array.make n (-2) in
  parents.(root) <- -1;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    let neighbours = Tdmd_graph.Digraph.succ g v @ Tdmd_graph.Digraph.pred g v in
    List.iter
      (fun u ->
        if parents.(u) = -2 then begin
          parents.(u) <- v;
          Queue.add u q
        end)
      (List.sort_uniq compare neighbours)
  done;
  if Array.exists (fun p -> p = -2) parents then
    invalid_arg "Rooted_tree.of_digraph: graph is not connected";
  (* Undirected edge count must be exactly n-1 for a tree. *)
  let undirected =
    List.fold_left
      (fun acc e ->
        let open Tdmd_graph.Digraph in
        if e.src < e.dst || not (mem_edge g e.dst e.src) then acc + 1 else acc)
      0
      (Tdmd_graph.Digraph.edges g)
  in
  if undirected <> n - 1 then invalid_arg "Rooted_tree.of_digraph: graph has extra edges";
  build root parents

let size t = Array.length t.parents
let root t = t.root
let parent t v = t.parents.(v)
let children t v = t.children.(v)
let depth t v = t.depths.(v)
let is_leaf t v = t.children.(v) = []

let leaves t =
  let acc = ref [] in
  for v = size t - 1 downto 0 do
    if is_leaf t v then acc := v :: !acc
  done;
  !acc

let height t = Array.fold_left max 0 t.depths

let subtree_vertices t v =
  let rec go v acc = List.fold_left (fun acc c -> go c acc) (v :: acc) t.children.(v) in
  List.rev (go v [])

let postorder t =
  let acc = ref [] in
  let rec go v =
    List.iter go t.children.(v);
    acc := v :: !acc
  in
  go t.root;
  List.rev !acc

let path_to_root t v =
  let rec go v acc = if v = t.root then List.rev (v :: acc) else go t.parents.(v) (v :: acc) in
  go v []

let is_ancestor t ~anc ~desc =
  let rec climb v = v = anc || (v <> t.root && climb t.parents.(v)) in
  climb desc

let to_digraph t =
  let g = Tdmd_graph.Digraph.create (size t) in
  Array.iteri (fun v p -> if p >= 0 then Tdmd_graph.Digraph.add_edge g v p) t.parents;
  g
