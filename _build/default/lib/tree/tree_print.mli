(** ASCII rendering of rooted trees for examples and the CLI.

    Vertices can be annotated (e.g. "[M]" for a placed middlebox, flow
    rates at leaves) through the [label] callback. *)

val render : ?label:(int -> string) -> Rooted_tree.t -> string
(** One vertex per line, children indented under their parent with
    box-drawing guides.  Default label: the vertex id. *)

val print : ?label:(int -> string) -> Rooted_tree.t -> unit
