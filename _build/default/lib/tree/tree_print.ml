let render ?(label = string_of_int) tree =
  let buf = Buffer.create 256 in
  let rec go prefix is_last v =
    Buffer.add_string buf prefix;
    if v <> Rooted_tree.root tree then
      Buffer.add_string buf (if is_last then "`-- " else "|-- ");
    Buffer.add_string buf (label v);
    Buffer.add_char buf '\n';
    let children = Rooted_tree.children tree v in
    let child_prefix =
      if v = Rooted_tree.root tree then prefix
      else prefix ^ (if is_last then "    " else "|   ")
    in
    let rec emit = function
      | [] -> ()
      | [ c ] -> go child_prefix true c
      | c :: rest ->
        go child_prefix false c;
        emit rest
    in
    emit children
  in
  go "" true (Rooted_tree.root tree);
  Buffer.contents buf

let print ?label tree = print_string (render ?label tree)
