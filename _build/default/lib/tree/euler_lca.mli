(** LCA via Euler tour + sparse-table RMQ (Bender–Farach-Colton).

    A second, independent LCA implementation: O(n log n) build, O(1)
    query.  HAT uses {!Lca} (binary lifting); the property tests drive
    both against {!Lca.naive} and each other, and the ablation bench
    compares their query costs. *)

type t

val build : Rooted_tree.t -> t
val query : t -> int -> int -> int
