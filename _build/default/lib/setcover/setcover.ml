type t = { universe : int; sets : int list array }

let make ~universe sets =
  List.iter
    (List.iter (fun e ->
         if e < 0 || e >= universe then invalid_arg "Setcover.make: element out of range"))
    sets;
  { universe; sets = Array.of_list (List.map (List.sort_uniq compare) sets) }

let full_mask t = (1 lsl t.universe) - 1

let mask_of_set t i = List.fold_left (fun m e -> m lor (1 lsl e)) 0 t.sets.(i)

let covers t chosen =
  let covered = Array.make t.universe false in
  List.iter (fun i -> List.iter (fun e -> covered.(e) <- true) t.sets.(i)) chosen;
  Array.for_all (fun c -> c) covered

let greedy t =
  if t.universe = 0 then Some []
  else begin
    let covered = Array.make t.universe false in
    let remaining = ref t.universe in
    let chosen = ref [] in
    let gain i =
      List.fold_left (fun acc e -> if covered.(e) then acc else acc + 1) 0 t.sets.(i)
    in
    let continue = ref true in
    while !remaining > 0 && !continue do
      let best = ref (-1) and best_gain = ref 0 in
      Array.iteri
        (fun i _ ->
          let g = gain i in
          if g > !best_gain then begin
            best := i;
            best_gain := g
          end)
        t.sets;
      if !best < 0 then continue := false
      else begin
        chosen := !best :: !chosen;
        List.iter
          (fun e ->
            if not covered.(e) then begin
              covered.(e) <- true;
              decr remaining
            end)
          t.sets.(!best)
      end
    done;
    if !remaining = 0 then Some (List.rev !chosen) else None
  end

let exact t =
  if t.universe > 62 then invalid_arg "Setcover.exact: universe too large";
  if t.universe = 0 then Some []
  else begin
    let n_sets = Array.length t.sets in
    let masks = Array.init n_sets (mask_of_set t) in
    let full = full_mask t in
    let best = ref None in
    let best_size = ref max_int in
    (* Branch on the lowest uncovered element: one of the sets containing
       it must be chosen.  This keeps the tree small and is exact. *)
    let rec go covered chosen size =
      if size >= !best_size then ()
      else if covered = full then begin
        best_size := size;
        best := Some (List.rev chosen)
      end
      else begin
        let uncovered = lnot covered land full in
        let e =
          let rec lowest i = if uncovered land (1 lsl i) <> 0 then i else lowest (i + 1) in
          lowest 0
        in
        for i = 0 to n_sets - 1 do
          if masks.(i) land (1 lsl e) <> 0 then
            go (covered lor masks.(i)) (i :: chosen) (size + 1)
        done
      end
    in
    go 0 [] 0;
    !best
  end

let decision t ~k =
  match exact t with Some cover -> List.length cover <= k | None -> false
