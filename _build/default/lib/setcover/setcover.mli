(** Set cover: the problem the TDMD feasibility check reduces to and from
    (paper Theorem 1).

    Universe elements are [0 .. universe-1]; each set is an int list.
    [greedy] is the classical ln(n)-approximation; [exact] is a
    branch-and-bound over bitsets for the small instances used in tests
    and in the NP-hardness demonstrations. *)

type t = { universe : int; sets : int list array }

val make : universe:int -> int list list -> t
(** @raise Invalid_argument if any element is out of range. *)

val covers : t -> int list -> bool
(** Does the given collection of set indices cover the universe? *)

val greedy : t -> int list option
(** Indices of a cover chosen greedily (largest uncovered gain first,
    lowest index wins ties), or [None] when even the full collection
    does not cover the universe. *)

val exact : t -> int list option
(** A minimum-cardinality cover.  Exponential in the worst case — meant
    for universes up to ~60 elements.
    @raise Invalid_argument if [universe > 62]. *)

val decision : t -> k:int -> bool
(** Is there a cover of cardinality at most [k]?  (The NP-complete
    decision problem of the reduction.)  Uses {!exact}. *)
