(** Both directions of the paper's Theorem 1 reduction.

    Forward: a set-cover instance becomes a TDMD feasibility instance —
    one vertex per set on a fully connected topology, one flow per
    element whose path is the "directed line" through the vertices of
    the sets containing it.  Backward: any TDMD instance's feasibility
    question is itself a set-cover instance (sets = flows through each
    vertex), which is how the exact feasibility oracle in the tests is
    implemented. *)

val to_tdmd : Setcover.t -> Tdmd_graph.Digraph.t * Tdmd_flow.Flow.t list
(** Forward reduction.  Flow [e]'s rate is 1; its path visits the
    vertices of the sets containing [e] in ascending set order.
    Elements contained in no set yield an isolated single-vertex path
    and make the instance (correctly) infeasible... they are rejected
    instead: @raise Invalid_argument if some element is in no set. *)

val of_flows : vertex_count:int -> Tdmd_flow.Flow.t list -> Setcover.t
(** Backward reduction: universe = flow positions (in list order), set
    [v] = flows whose path contains [v]. *)

val feasible_exact : vertex_count:int -> k:int -> Tdmd_flow.Flow.t list -> bool
(** Exact TDMD feasibility via the backward reduction and
    {!Setcover.exact}.  Only for small instances (≤ 62 flows). *)

val min_middleboxes_exact : vertex_count:int -> Tdmd_flow.Flow.t list -> int
(** Minimum number of middleboxes that can serve all flows (exact; same
    size limits). *)
