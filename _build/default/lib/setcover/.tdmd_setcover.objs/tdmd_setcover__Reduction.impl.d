lib/setcover/reduction.ml: Array List Setcover Tdmd_flow Tdmd_graph
