lib/setcover/reduction.mli: Setcover Tdmd_flow Tdmd_graph
