lib/setcover/setcover.mli:
