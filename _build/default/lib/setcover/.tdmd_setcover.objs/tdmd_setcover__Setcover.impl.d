lib/setcover/setcover.ml: Array List
