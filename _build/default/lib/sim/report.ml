open Tdmd_prelude

let panel ~metric ~x_label (series : Experiments.series list) =
  let xs =
    match series with
    | [] -> []
    | s :: _ -> List.map (fun (p : Runner.point) -> p.Runner.x) s.Experiments.points
  in
  let t =
    Table.create (x_label :: List.map (fun s -> s.Experiments.algorithm) series)
  in
  List.iteri
    (fun i x ->
      let cells =
        List.map
          (fun s ->
            let p = List.nth s.Experiments.points i in
            let summary =
              match metric with
              | `Bandwidth -> p.Runner.bandwidth
              | `Time -> p.Runner.seconds
            in
            Table.cell_pm summary.Stats.mean summary.Stats.stddev)
          series
      in
      Table.add_row t (Table.cell_float x :: cells))
    xs;
  Table.to_string t

let render_result (r : Experiments.result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s ==\n\n(a) Total bandwidth consumption\n"
       r.Experiments.fig_id r.Experiments.title);
  Buffer.add_string buf
    (panel ~metric:`Bandwidth ~x_label:r.Experiments.x_label r.Experiments.series);
  Buffer.add_string buf "\n(b) Execution time (seconds)\n";
  Buffer.add_string buf
    (panel ~metric:`Time ~x_label:r.Experiments.x_label r.Experiments.series);
  Buffer.contents buf

let render_grid (g : Experiments.grid) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s ==\n\nbandwidth by k (rows) x density (cols)\n"
       g.Experiments.fig_id g.Experiments.title);
  let t =
    Table.create
      ("k \\ density"
      :: List.map Table.cell_float g.Experiments.density_values)
  in
  List.iter
    (fun k ->
      let cells =
        List.map
          (fun d ->
            let _, _, v =
              List.find
                (fun (k', d', _) -> k' = k && d' = d)
                g.Experiments.cells
            in
            Table.cell_float v)
          g.Experiments.density_values
      in
      Table.add_row t (string_of_int k :: cells))
    g.Experiments.k_values;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let render_ablation rows =
  let t = Table.create [ "variant"; "metric"; "value" ] in
  List.iter
    (fun (r : Experiments.ablation_row) ->
      Table.add_row t
        [ r.Experiments.label; r.Experiments.metric; Table.cell_float r.Experiments.value ])
    rows;
  "== ablations ==\n\n" ^ Table.to_string t

let result_csv (r : Experiments.result) =
  let t =
    Table.create [ "figure"; "metric"; "x"; "algorithm"; "mean"; "stddev"; "n" ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun (p : Runner.point) ->
          let row metric (summary : Stats.summary) =
            Table.add_row t
              [
                r.Experiments.fig_id;
                metric;
                Table.cell_float p.Runner.x;
                s.Experiments.algorithm;
                Printf.sprintf "%.6g" summary.Stats.mean;
                Printf.sprintf "%.6g" summary.Stats.stddev;
                string_of_int summary.Stats.n;
              ]
          in
          row "bandwidth" p.Runner.bandwidth;
          row "seconds" p.Runner.seconds)
        s.Experiments.points)
    r.Experiments.series;
  Table.to_csv t

let print_result r = print_string (render_result r)
let print_grid g = print_string (render_grid g)
let print_ablation rows = print_string (render_ablation rows)
