(** One experiment per evaluation figure (paper Sec. 6.3–6.5).

    Each function regenerates the corresponding figure's series: for
    every sweep value it builds fresh seeded instances, runs the
    algorithms the paper plots, and returns one row per (x, algorithm)
    with mean ± stddev of bandwidth and wall-clock seconds.  Rendering
    to the terminal is in {!Report}. *)

type series = {
  algorithm : string;
  points : Runner.point list;
}

type result = {
  fig_id : string;
  title : string;
  x_label : string;
  series : series list;
      (** each point carries both metrics: bandwidth (Fig. N(a)) and
          execution time (Fig. N(b)) *)
}

val fig9 : ?seed:int -> ?reps:int -> unit -> result
(** Bandwidth & time vs middlebox budget k in the tree (k = 1..16 step 3). *)

val fig10 : ?seed:int -> ?reps:int -> unit -> result
(** vs traffic-changing ratio λ = 0..0.9 in the tree. *)

val fig11 : ?seed:int -> ?reps:int -> unit -> result
(** vs flow density 0.3..0.8 in the tree. *)

val fig12 : ?seed:int -> ?reps:int -> unit -> result
(** vs topology size 12..32 step 4 in the tree. *)

val fig13 : ?seed:int -> ?reps:int -> unit -> result
(** vs k = 12..22 step 2 in the general topology. *)

val fig14 : ?seed:int -> ?reps:int -> unit -> result
(** vs λ in the general topology. *)

val fig15 : ?seed:int -> ?reps:int -> unit -> result
(** vs density in the general topology. *)

val fig16 : ?seed:int -> ?reps:int -> unit -> result
(** vs size 12..52 step 8 in the general topology. *)

type grid = {
  fig_id : string;
  title : string;
  k_values : int list;
  density_values : float list;
  cells : (int * float * float) list;  (** (k, density, mean bandwidth) *)
}

val fig17_tree : ?seed:int -> ?reps:int -> unit -> grid
(** Spam filters (λ = 0): GTP bandwidth over the k × density grid, tree. *)

val fig17_general : ?seed:int -> ?reps:int -> unit -> grid
(** Same grid in the general topology. *)

type ablation_row = {
  label : string;
  metric : string;
  value : float;
}

val ablation : ?seed:int -> ?reps:int -> unit -> ablation_row list
(** Design ablations: CELF vs plain GTP oracle calls, HAT merge count,
    rate-scaled DP accuracy/state trade-off. *)
