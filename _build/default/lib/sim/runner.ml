open Tdmd_prelude

type observation = {
  bandwidth : float;
  seconds : float;
  feasible : bool;
}

type point = {
  x : float;
  bandwidth : Stats.summary;
  seconds : Stats.summary;
  infeasible_runs : int;
}

let repeat ~seed ~reps f ~x =
  let master = Rng.create seed in
  let obs = List.init reps (fun _ -> f (Rng.split master)) in
  let feasible = List.filter (fun (o : observation) -> o.feasible) obs in
  let summaries =
    match feasible with
    | [] ->
      (* Degenerate: report over all runs rather than an empty summary. *)
      obs
    | _ -> feasible
  in
  {
    x;
    bandwidth = Stats.summarize (List.map (fun (o : observation) -> o.bandwidth) summaries);
    seconds = Stats.summarize (List.map (fun (o : observation) -> o.seconds) summaries);
    infeasible_runs = List.length obs - List.length feasible;
  }

let measure run extract =
  let result, seconds = Timer.time run in
  let bandwidth, feasible = extract result in
  { bandwidth; seconds; feasible }

type joint_point = {
  jx : float;
  by_algo : (string * point) list;
  redraws : int;
}

let joint ~domains ~seed ~reps ~x ~build ~algos =
  let master = Rng.create seed in
  (* Pre-split one generator per repetition so the results are identical
     whether repetitions run sequentially or across domains. *)
  let rep_rngs = List.init reps (fun _ -> Rng.split master) in
  let run_rep rep_rng =
    (* Draw instances until every algorithm's plan is feasible, like the
       paper's "we choose to regenerate a traffic distribution". *)
    let rec draw tries redraws =
      let rng = Rng.split rep_rng in
      let inst = build rng in
      let obs = List.map (fun (name, f) -> (name, f inst (Rng.split rng))) algos in
      if List.for_all (fun (_, (o : observation)) -> o.feasible) obs || tries >= 20
      then (obs, redraws)
      else draw (tries + 1) (redraws + 1)
    in
    draw 0 0
  in
  let rep_results = Tdmd_prelude.Parallel.map ~domains run_rep rep_rngs in
  let acc =
    List.map (fun (name, _) -> (name, Stats.Welford.create (), Stats.Welford.create ())) algos
  in
  let infeasible = Hashtbl.create 8 in
  let redraws = ref 0 in
  List.iter
    (fun (obs, rep_redraws) ->
      redraws := !redraws + rep_redraws;
      List.iter2
        (fun (name, bw, sec) (name', (o : observation)) ->
          assert (name = name');
          Stats.Welford.add bw o.bandwidth;
          Stats.Welford.add sec o.seconds;
          if not o.feasible then
            Hashtbl.replace infeasible name
              (1 + Option.value ~default:0 (Hashtbl.find_opt infeasible name)))
        acc obs)
    rep_results;
  let summary w =
    {
      Stats.n = Stats.Welford.count w;
      mean = Stats.Welford.mean w;
      stddev = Stats.Welford.stddev w;
      min = Stats.Welford.min w;
      max = Stats.Welford.max w;
    }
  in
  {
    jx = x;
    by_algo =
      List.map
        (fun (name, bw, sec) ->
          ( name,
            {
              x;
              bandwidth = summary bw;
              seconds = summary sec;
              infeasible_runs =
                Option.value ~default:0 (Hashtbl.find_opt infeasible name);
            } ))
        acc;
    redraws = !redraws;
  }
