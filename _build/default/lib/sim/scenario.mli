(** Experiment scenarios (paper Sec. 6.1–6.2).

    A scenario fixes the topology family, traffic model and middlebox
    parameters; sweeps vary exactly one field, keeping the paper's
    defaults for the rest: tree k = 8, general k = 10, λ = 0.5, flow
    density 0.5, tree size 22, general size 30. *)

type tree = {
  size : int;
  k : int;
  lambda : float;
  density : float;
  rates : Tdmd_traffic.Rate_dist.t;
  link_capacity : int;
}

type general = {
  size : int;
  k : int;
  lambda : float;
  density : float;
  rates : Tdmd_traffic.Rate_dist.t;
  link_capacity : int;
}

val default_tree : tree
val default_general : general

val build_tree :
  Tdmd_prelude.Rng.t -> tree -> Tdmd.Instance.Tree.t
(** Ark-derived spanning tree of the requested size with leaf-to-root
    CAIDA-like flows at the requested density. *)

val build_general :
  Tdmd_prelude.Rng.t -> general -> Tdmd.Instance.t
(** Ark-derived general subgraph with hub destinations. *)
