(** Terminal rendering of experiment results: one aligned table per
    figure panel (bandwidth and execution time), plus the 3-D grids of
    Fig. 17 and the ablation table.  Values print as "mean ± stddev",
    matching the paper's error bars. *)

val render_result : Experiments.result -> string
(** Both panels of a line figure. *)

val render_grid : Experiments.grid -> string

val render_ablation : Experiments.ablation_row list -> string

val result_csv : Experiments.result -> string
(** Long-format CSV: figure, metric, x, algorithm, mean, stddev, n. *)

val print_result : Experiments.result -> unit
val print_grid : Experiments.grid -> unit
val print_ablation : Experiments.ablation_row list -> unit
