lib/sim/experiments.ml: Array Float List Listx Rng Runner Scenario Stats Sys Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_traffic Timer
