lib/sim/experiments.mli: Runner
