lib/sim/runner.mli: Tdmd_prelude
