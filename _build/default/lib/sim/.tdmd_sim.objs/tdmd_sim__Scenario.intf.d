lib/sim/scenario.mli: Tdmd Tdmd_prelude Tdmd_traffic
