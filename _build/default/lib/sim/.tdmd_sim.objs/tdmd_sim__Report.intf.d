lib/sim/report.mli: Experiments
