lib/sim/scenario.ml: Tdmd Tdmd_topo Tdmd_traffic
