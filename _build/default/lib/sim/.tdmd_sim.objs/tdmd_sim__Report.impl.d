lib/sim/report.ml: Buffer Experiments List Printf Runner Stats Table Tdmd_prelude
