lib/sim/runner.ml: Hashtbl List Option Rng Stats Tdmd_prelude Timer
