let undirected_edges g =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let u, v = (min e.Digraph.src e.Digraph.dst, max e.Digraph.src e.Digraph.dst) in
      match Hashtbl.find_opt tbl (u, v) with
      | Some w when w <= e.Digraph.weight -> ()
      | _ -> Hashtbl.replace tbl (u, v) e.Digraph.weight)
    (Digraph.edges g);
  Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) tbl []

let kruskal g =
  let edges =
    List.sort
      (fun (_, _, w1) (_, _, w2) -> compare w1 w2)
      (undirected_edges g)
  in
  let dsu = Dsu.create (Digraph.vertex_count g) in
  List.filter (fun (u, v, _) -> Dsu.union dsu u v) edges
  |> List.sort compare

let total_weight edges = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 edges

let spanning_tree_digraph g =
  let t = Digraph.create (Digraph.vertex_count g) in
  List.iter (fun (u, v, w) -> Digraph.add_undirected ~weight:w t u v) (kruskal g);
  t
