let distances g =
  let n = Digraph.vertex_count g in
  let d = Array.make_matrix n n infinity in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0.0
  done;
  List.iter
    (fun e ->
      if e.Digraph.weight < 0.0 then
        invalid_arg "Floyd_warshall: negative edge weight";
      if e.Digraph.weight < d.(e.Digraph.src).(e.Digraph.dst) then
        d.(e.Digraph.src).(e.Digraph.dst) <- e.Digraph.weight)
    (Digraph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < infinity then
        for j = 0 to n - 1 do
          let via = dik +. d.(k).(j) in
          if via < d.(i).(j) then d.(i).(j) <- via
        done
    done
  done;
  d

let diameter g =
  let d = distances g in
  let best = ref 0.0 in
  Array.iter
    (Array.iter (fun x -> if x < infinity && x > !best then best := x))
    d;
  !best

let mean_finite_distance g =
  let d = distances g in
  let sum = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j x ->
          if i <> j && x < infinity then begin
            sum := !sum +. x;
            incr count
          end)
        row)
    d;
  if !count = 0 then nan else !sum /. float_of_int !count
