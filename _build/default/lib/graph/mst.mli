(** Minimum spanning tree (Kruskal over the union–find).

    Used by the topology pipeline to extract low-weight tree backbones
    from weighted general topologies (an alternative to the BFS
    spanning tree when link weights model latency). *)

val kruskal : Digraph.t -> (int * int * float) list
(** Undirected MST edges [(u, v, w)] with [u < v].  Arc pairs are
    treated as one undirected edge of their minimum weight; for a
    disconnected graph this is the spanning forest. *)

val total_weight : (int * int * float) list -> float

val spanning_tree_digraph : Digraph.t -> Digraph.t
(** The MST as a bidirectional-link digraph on the same vertex set. *)
