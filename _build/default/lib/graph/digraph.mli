(** Directed graphs over vertices [0 .. n-1].

    The paper's network model (Sec. 3.1): vertices are switches, edges are
    links.  Links are bidirectional, so topology generators add both arcs;
    the type itself is directed because flow paths are directed.  Vertices
    are dense integers, which lets every algorithm use flat arrays. *)

type t

type edge = { src : int; dst : int; weight : float }

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val vertex_count : t -> int
val edge_count : t -> int
(** Number of directed arcs. *)

val add_edge : ?weight:float -> t -> int -> int -> unit
(** Add the directed arc [u -> v] (default weight [1.]).  Duplicate arcs
    are ignored (first weight wins); self-loops raise
    [Invalid_argument]. *)

val add_undirected : ?weight:float -> t -> int -> int -> unit
(** Both arcs, mirroring the paper's bidirectional links. *)

val mem_edge : t -> int -> int -> bool
val weight : t -> int -> int -> float
(** @raise Not_found if the arc is absent. *)

val succ : t -> int -> int list
(** Out-neighbours in insertion order. *)

val pred : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val edges : t -> edge list
val iter_succ : t -> int -> (int -> float -> unit) -> unit
val copy : t -> t

val induced : t -> int array -> t * int array
(** [induced g keep] is the subgraph on the vertices listed in [keep]
    (renumbered densely, preserving [keep]'s order) together with the
    mapping from new index to old vertex id. *)

val is_connected_undirected : t -> bool
(** Connectivity ignoring arc direction (vacuously true on <= 1
    vertices). *)

val to_dot : ?name:string -> t -> string
(** Graphviz rendering (directed). *)
