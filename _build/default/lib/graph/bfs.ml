let search g s =
  let n = Digraph.vertex_count g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    Digraph.iter_succ g v (fun u _ ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          parent.(u) <- v;
          Queue.add u q
        end)
  done;
  (dist, parent)

let distances g s = fst (search g s)
let parents g s = snd (search g s)

let shortest_path g ~src ~dst =
  let dist, parent = search g src in
  if dist.(dst) = max_int then None
  else begin
    let rec walk v acc = if v = src then src :: acc else walk parent.(v) (v :: acc) in
    Some (walk dst [])
  end

let rec path_to_edges = function
  | [] | [ _ ] -> []
  | u :: (v :: _ as rest) -> (u, v) :: path_to_edges rest
