type result =
  | Distances of float array
  | Negative_cycle

let distances g s =
  let n = Digraph.vertex_count g in
  let dist = Array.make n infinity in
  dist.(s) <- 0.0;
  let edges = Digraph.edges g in
  let relax () =
    List.fold_left
      (fun changed e ->
        let { Digraph.src; dst; weight } = e in
        if dist.(src) < infinity && dist.(src) +. weight < dist.(dst) then begin
          dist.(dst) <- dist.(src) +. weight;
          true
        end
        else changed)
      false edges
  in
  (* Up to n-1 relaxation rounds with early exit; if the n-th round
     still improves something, a negative cycle is reachable. *)
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < n - 1 do
    changed := relax ();
    incr round
  done;
  if !changed && relax () then Negative_cycle else Distances dist
