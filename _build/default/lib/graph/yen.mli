(** Yen's algorithm for k loopless shortest paths.

    The paper fixes one pre-determined path per flow; the workload
    generators optionally spread flows over the K best routes instead of
    always the single shortest one, which diversifies paths the way
    measured traffic does.  Classic Yen (1971) built on {!Dijkstra}. *)

val k_shortest :
  Digraph.t -> src:int -> dst:int -> k:int -> (int list * float) list
(** Up to [k] loopless paths in non-decreasing weight order (fewer if
    the graph has fewer).  Deterministic: candidate ties break on the
    path's vertex sequence. *)
