lib/graph/bellman_ford.ml: Array Digraph List
