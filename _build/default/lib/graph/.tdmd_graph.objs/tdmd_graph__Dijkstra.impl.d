lib/graph/dijkstra.ml: Array Digraph Tdmd_heap
