lib/graph/dsu.mli:
