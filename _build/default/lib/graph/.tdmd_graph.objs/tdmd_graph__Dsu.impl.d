lib/graph/dsu.ml: Array
