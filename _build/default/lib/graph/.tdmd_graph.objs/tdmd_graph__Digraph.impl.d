lib/graph/digraph.ml: Array Buffer List Printf
