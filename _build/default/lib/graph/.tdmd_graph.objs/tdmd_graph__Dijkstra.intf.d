lib/graph/dijkstra.mli: Digraph
