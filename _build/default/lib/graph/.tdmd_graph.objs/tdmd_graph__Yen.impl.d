lib/graph/yen.ml: Array Digraph List Tdmd_heap
