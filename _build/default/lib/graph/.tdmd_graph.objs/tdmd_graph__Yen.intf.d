lib/graph/yen.mli: Digraph
