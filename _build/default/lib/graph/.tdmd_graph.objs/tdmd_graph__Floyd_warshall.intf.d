lib/graph/floyd_warshall.mli: Digraph
