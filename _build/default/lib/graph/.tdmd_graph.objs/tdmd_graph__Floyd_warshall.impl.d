lib/graph/floyd_warshall.ml: Array Digraph List
