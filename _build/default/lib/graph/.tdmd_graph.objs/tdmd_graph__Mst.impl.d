lib/graph/mst.ml: Digraph Dsu Hashtbl List
