lib/graph/bfs.ml: Array Digraph Queue
