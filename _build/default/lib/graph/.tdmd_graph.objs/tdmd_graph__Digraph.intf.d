lib/graph/digraph.mli:
