lib/graph/bellman_ford.mli: Digraph
