lib/graph/bfs.mli: Digraph
