(** Breadth-first shortest paths (unit edge lengths).

    Flow paths in the general-topology experiments are hop-count shortest
    paths from the flow source to one of the designated destination
    vertices, matching the paper's pre-determined valid paths. *)

val distances : Digraph.t -> int -> int array
(** [distances g s] is the hop distance from [s] to every vertex
    ([max_int] when unreachable). *)

val parents : Digraph.t -> int -> int array
(** BFS tree parents ([-1] for the source and unreachable vertices). *)

val shortest_path : Digraph.t -> src:int -> dst:int -> int list option
(** Vertex sequence from [src] to [dst] inclusive, or [None] when
    unreachable.  Deterministic: neighbours are scanned in adjacency
    order. *)

val path_to_edges : int list -> (int * int) list
(** Consecutive pairs of a vertex path. *)
