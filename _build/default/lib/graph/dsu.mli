(** Union–find with path compression and union by rank.  Used by the
    topology generators to keep random graphs connected. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the two classes; returns [false] when they were
    already one class. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint classes. *)
