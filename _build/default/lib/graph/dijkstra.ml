let search g s =
  let n = Digraph.vertex_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Tdmd_heap.Indexed_heap.create n in
  dist.(s) <- 0.0;
  Tdmd_heap.Indexed_heap.push heap s 0.0;
  let rec loop () =
    match Tdmd_heap.Indexed_heap.pop heap with
    | None -> ()
    | Some (v, d) ->
      Digraph.iter_succ g v (fun u w ->
          if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
          let nd = d +. w in
          if nd < dist.(u) then begin
            if dist.(u) = infinity then Tdmd_heap.Indexed_heap.push heap u nd
            else Tdmd_heap.Indexed_heap.decrease heap u nd;
            dist.(u) <- nd;
            parent.(u) <- v
          end);
      loop ()
  in
  loop ();
  (dist, parent)

let distances g s = fst (search g s)

let shortest_path g ~src ~dst =
  let dist, parent = search g src in
  if dist.(dst) = infinity then None
  else begin
    let rec walk v acc = if v = src then src :: acc else walk parent.(v) (v :: acc) in
    Some (walk dst [], dist.(dst))
  end
