(** Bellman–Ford single-source shortest paths.

    Tolerates negative arc weights (used by cost models where a
    middlebox subsidises a link) and detects negative cycles; also the
    property-test cross-check for {!Dijkstra} on non-negative
    weights. *)

type result =
  | Distances of float array
  | Negative_cycle

val distances : Digraph.t -> int -> result
