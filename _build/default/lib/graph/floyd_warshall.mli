(** All-pairs shortest paths.

    O(|V|³); used by the topology statistics (diameter, mean path
    length) and as a second opinion against Dijkstra/BFS in the
    property tests. *)

val distances : Digraph.t -> float array array
(** [d.(u).(v)]: weighted distance, [infinity] if unreachable, [0.] on
    the diagonal.
    @raise Invalid_argument on a negative edge weight (negative cycles
    are out of scope for link networks). *)

val diameter : Digraph.t -> float
(** Largest finite pairwise distance (0. for singleton graphs). *)

val mean_finite_distance : Digraph.t -> float
(** Mean over ordered reachable pairs (u <> v); [nan] if none. *)
