(* Dijkstra on a filtered view of the graph: [blocked_edge u v] and
   [blocked_vertex v] hide parts of the graph without copying it. *)
let filtered_shortest g ~src ~dst ~blocked_edge ~blocked_vertex =
  let n = Digraph.vertex_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Tdmd_heap.Indexed_heap.create n in
  if blocked_vertex src then None
  else begin
    dist.(src) <- 0.0;
    Tdmd_heap.Indexed_heap.push heap src 0.0;
    let rec loop () =
      match Tdmd_heap.Indexed_heap.pop heap with
      | None -> ()
      | Some (v, d) ->
        Digraph.iter_succ g v (fun u w ->
            if (not (blocked_vertex u)) && not (blocked_edge v u) then begin
              let nd = d +. w in
              if nd < dist.(u) then begin
                if dist.(u) = infinity then Tdmd_heap.Indexed_heap.push heap u nd
                else Tdmd_heap.Indexed_heap.decrease heap u nd;
                dist.(u) <- nd;
                parent.(u) <- v
              end
            end);
        loop ()
    in
    loop ();
    if dist.(dst) = infinity then None
    else begin
      let rec walk v acc = if v = src then src :: acc else walk parent.(v) (v :: acc) in
      Some (walk dst [], dist.(dst))
    end
  end

let k_shortest g ~src ~dst ~k =
  assert (k >= 0);
  match filtered_shortest g ~src ~dst ~blocked_edge:(fun _ _ -> false)
          ~blocked_vertex:(fun _ -> false)
  with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let candidates = ref [] in
    let prefix_weight g path =
      let rec go acc = function
        | u :: (v :: _ as rest) -> go (acc +. Digraph.weight g u v) rest
        | _ -> acc
      in
      go 0.0 path
    in
    let rec take_prefix path i =
      match (path, i) with
      | _, 0 -> []
      | x :: _, 1 -> [ x ]
      | x :: rest, i -> x :: take_prefix rest (i - 1)
      | [], _ -> []
    in
    (try
       for _ = 2 to k do
         let prev_path, _ = List.hd !accepted in
         (* Branch at every spur vertex of the previously accepted path. *)
         List.iteri
           (fun i spur ->
             if i < List.length prev_path - 1 then begin
               let root = take_prefix prev_path (i + 1) in
               (* Edges leaving the spur along any accepted/candidate
                  path sharing this root are blocked. *)
               let blocked_pairs =
                 List.filter_map
                   (fun (p, _) ->
                     if take_prefix p (i + 1) = root then begin
                       match List.nth_opt p (i + 1) with
                       | Some next -> Some (spur, next)
                       | None -> None
                     end
                     else None)
                   !accepted
               in
               let root_vertices = take_prefix prev_path i in
               let blocked_vertex v = List.mem v root_vertices in
               let blocked_edge u v = List.mem (u, v) blocked_pairs in
               match
                 filtered_shortest g ~src:spur ~dst ~blocked_edge ~blocked_vertex
               with
               | None -> ()
               | Some (spur_path, spur_w) ->
                 let total_path = root @ List.tl spur_path in
                 let total_w = prefix_weight g root +. spur_w in
                 let cand = (total_path, total_w) in
                 let known =
                   List.exists (fun (p, _) -> p = total_path) !accepted
                   || List.exists (fun (p, _) -> p = total_path) !candidates
                 in
                 if not known then candidates := cand :: !candidates
             end)
           prev_path;
         match
           List.sort
             (fun (p1, w1) (p2, w2) -> compare (w1, p1) (w2, p2))
             !candidates
         with
         | [] -> raise Exit
         | best :: rest ->
           accepted := best :: !accepted;
           candidates := rest
       done
     with Exit -> ());
    List.rev !accepted
