type adj = { mutable out : (int * float) list; mutable into : (int * float) list }

type t = { n : int; adj : adj array; mutable m : int }

type edge = { src : int; dst : int; weight : float }

let create n =
  assert (n >= 0);
  { n; adj = Array.init (max n 1) (fun _ -> { out = []; into = [] }); m = 0 }

let vertex_count t = t.n
let edge_count t = t.m

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Digraph: vertex out of range"

let mem_edge t u v =
  check_vertex t u;
  check_vertex t v;
  List.mem_assoc v t.adj.(u).out

let add_edge ?(weight = 1.0) t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Digraph.add_edge: self-loop";
  if not (mem_edge t u v) then begin
    t.adj.(u).out <- (v, weight) :: t.adj.(u).out;
    t.adj.(v).into <- (u, weight) :: t.adj.(v).into;
    t.m <- t.m + 1
  end

let add_undirected ?weight t u v =
  add_edge ?weight t u v;
  add_edge ?weight t v u

let weight t u v =
  check_vertex t u;
  check_vertex t v;
  List.assoc v t.adj.(u).out

let succ t v =
  check_vertex t v;
  List.rev_map fst t.adj.(v).out

let pred t v =
  check_vertex t v;
  List.rev_map fst t.adj.(v).into

let out_degree t v =
  check_vertex t v;
  List.length t.adj.(v).out

let in_degree t v =
  check_vertex t v;
  List.length t.adj.(v).into

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    List.iter (fun (v, w) -> acc := { src = u; dst = v; weight = w } :: !acc) t.adj.(u).out
  done;
  !acc

let iter_succ t v f =
  check_vertex t v;
  List.iter (fun (u, w) -> f u w) (List.rev t.adj.(v).out)

let copy t =
  let g = create t.n in
  List.iter (fun e -> add_edge ~weight:e.weight g e.src e.dst) (edges t);
  g

let induced t keep =
  let remap = Array.make t.n (-1) in
  Array.iteri (fun i v -> check_vertex t v; remap.(v) <- i) keep;
  let g = create (Array.length keep) in
  Array.iteri
    (fun i v ->
      List.iter
        (fun (u, w) -> if remap.(u) >= 0 then add_edge ~weight:w g i remap.(u))
        t.adj.(v).out)
    keep;
  (g, Array.copy keep)

let is_connected_undirected t =
  if t.n <= 1 then true
  else begin
    let seen = Array.make t.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        let visit (u, _) =
          if not seen.(u) then begin
            seen.(u) <- true;
            incr count;
            stack := u :: !stack
          end
        in
        List.iter visit t.adj.(v).out;
        List.iter visit t.adj.(v).into
    done;
    !count = t.n
  end

let to_dot ?(name = "g") t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to t.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  List.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" e.src e.dst))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
