(** Weighted single-source shortest paths (non-negative weights),
    implemented over {!Tdmd_heap.Indexed_heap}. *)

val distances : Digraph.t -> int -> float array
(** [infinity] for unreachable vertices.
    @raise Invalid_argument on a negative edge weight. *)

val shortest_path : Digraph.t -> src:int -> dst:int -> (int list * float) option
(** Vertex path and its total weight. *)
