lib/prelude/listx.mli:
