lib/prelude/histogram.ml: Array Buffer Float Printf String
