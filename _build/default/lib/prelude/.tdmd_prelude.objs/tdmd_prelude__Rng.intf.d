lib/prelude/rng.mli:
