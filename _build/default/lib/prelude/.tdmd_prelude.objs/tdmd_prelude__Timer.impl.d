lib/prelude/timer.ml: Unix
