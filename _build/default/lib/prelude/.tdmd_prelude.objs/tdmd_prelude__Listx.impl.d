lib/prelude/listx.ml: Hashtbl List
