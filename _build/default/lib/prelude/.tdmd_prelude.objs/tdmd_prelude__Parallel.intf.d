lib/prelude/parallel.mli:
