lib/prelude/parallel.ml: Array Atomic Domain List Option
