lib/prelude/histogram.mli:
