lib/prelude/stats.mli:
