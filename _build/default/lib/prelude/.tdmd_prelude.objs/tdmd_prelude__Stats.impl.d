lib/prelude/stats.ml: Array Float List
