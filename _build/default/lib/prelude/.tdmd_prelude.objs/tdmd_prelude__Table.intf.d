lib/prelude/table.mli:
