lib/prelude/timer.mli:
