(** Fixed-bin histograms for workload and topology statistics. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Uniform bins over [\[lo, hi)]; out-of-range samples clamp to the
    first/last bin.  @raise Invalid_argument if [bins <= 0] or
    [hi <= lo]. *)

val add : t -> float -> unit
val count : t -> int
val bin_counts : t -> int array
val bin_edges : t -> (float * float) array
(** Per-bin [(lower, upper)] bounds, same order as {!bin_counts}. *)

val render : ?width:int -> t -> string
(** ASCII bar chart, one bin per line (bars scaled to [width], default
    40 columns). *)
