(** Small list/array helpers shared across the libraries. *)

val range : int -> int -> int list
(** [range lo hi] is [\[lo; lo+1; …; hi\]]; empty when [lo > hi]. *)

val frange : lo:float -> hi:float -> step:float -> float list
(** Inclusive float range with a tolerance of [step /. 2.] at the top end
    (so [frange ~lo:0. ~hi:0.9 ~step:0.1] has ten points despite rounding). *)

val sum_by : ('a -> float) -> 'a list -> float
val isum_by : ('a -> int) -> 'a list -> int
val max_by : ('a -> float) -> 'a list -> 'a
(** Element attaining the maximum key; first one wins ties.
    Raises [Invalid_argument] on the empty list. *)

val min_by : ('a -> float) -> 'a list -> 'a
val take : int -> 'a list -> 'a list
val group_by : ('a -> int) -> 'a list -> (int * 'a list) list
(** Groups by an integer key; groups are sorted by key, and elements
    within a group keep their input order. *)
