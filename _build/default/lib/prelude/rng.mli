(** Deterministic pseudo-random number generation.

    Every stochastic component of the library threads an explicit generator
    so that experiments are reproducible from a single integer seed.  The
    implementation is SplitMix64 (Steele et al., OOPSLA 2014): a tiny,
    statistically solid, splittable generator whose state is a single
    [int64].  It is not cryptographic and is not meant to be. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with identical current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (for all practical purposes) independent of [t]'s continuation.  Use
    one split per repetition so that sweep points do not share streams. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t n k] draws [k] distinct values from
    [\[0, n)].  Requires [k <= n]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto(Type I) sample: support [\[x_min, ∞)], tail index [alpha]. *)

val gaussian : t -> mean:float -> std:float -> float
(** Box–Muller normal sample. *)
