let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, t1 -. t0)

let time_only f = snd (time f)
