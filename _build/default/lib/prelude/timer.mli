(** Wall-clock measurement for the execution-time figures. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_only : (unit -> 'a) -> float
(** Elapsed seconds of [f ()], discarding the result (the result is still
    computed; only its value is dropped). *)
