type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: empty range";
  { lo; hi; bins = Array.make bins 0; total = 0 }

let bin_index t x =
  let n = Array.length t.bins in
  let raw =
    int_of_float (Float.of_int n *. ((x -. t.lo) /. (t.hi -. t.lo)))
  in
  max 0 (min (n - 1) raw)

let add t x =
  t.bins.(bin_index t x) <- t.bins.(bin_index t x) + 1;
  t.total <- t.total + 1

let count t = t.total
let bin_counts t = Array.copy t.bins

let bin_edges t =
  let n = Array.length t.bins in
  let step = (t.hi -. t.lo) /. float_of_int n in
  Array.init n (fun i ->
      (t.lo +. (float_of_int i *. step), t.lo +. (float_of_int (i + 1) *. step)))

let render ?(width = 40) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left max 1 t.bins in
  Array.iteri
    (fun i c ->
      let lo, hi = (bin_edges t).(i) in
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%8.3g, %8.3g) %6d %s\n" lo hi c (String.make bar '#')))
    t.bins;
  Buffer.contents buf
