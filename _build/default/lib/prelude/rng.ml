type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: xor-shift-multiply finaliser of the
   incremented state.  See Steele, Lea, Flood (2014). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t n k =
  assert (k <= n && k >= 0);
  (* Partial Fisher–Yates over an index array: O(n) setup, fine at the
     scales used here. *)
  let idx = Array.init n (fun i -> i) in
  let rec take i acc =
    if i = k then List.rev acc
    else begin
      let j = i + int t (n - i) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp;
      take (i + 1) (idx.(i) :: acc)
    end
  in
  take 0 []

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let exponential t mean =
  let u = float t 1.0 in
  -. mean *. log1p (-. u)

let pareto t ~alpha ~x_min =
  let u = float t 1.0 in
  x_min /. ((1.0 -. u) ** (1.0 /. alpha))

let gaussian t ~mean ~std =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
