(** Aligned text tables and CSV output for experiment results. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : string list -> t
(** [create header] starts a table with the given column names. *)

val add_row : t -> string list -> unit
(** Append a row.  Short rows are padded with empty cells; long rows
    raise [Invalid_argument]. *)

val to_string : t -> string
(** Render with aligned columns, a header separator, and a trailing
    newline. *)

val print : t -> unit

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val cell_float : float -> string
(** Compact float formatting used throughout the benches ([%.4g]). *)

val cell_pm : float -> float -> string
(** [cell_pm mean std] renders ["mean ± std"]. *)
