(** Running statistics for experiment repetitions.

    The harness runs every sweep point several times with distinct seeds
    and reports mean ± standard deviation (the paper's error bars).
    [Welford] accumulates in a single numerically-stable pass. *)

module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** Mean of the observations; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** One-shot summary of a non-empty observation list. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,1\]]; linear interpolation between
    order statistics.  Sorts a copy; the input is untouched. *)

val mean : float list -> float
val stddev : float list -> float
