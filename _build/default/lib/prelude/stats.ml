module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize xs =
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  {
    n = Welford.count w;
    mean = Welford.mean w;
    stddev = Welford.stddev w;
    min = Welford.min w;
    max = Welford.max w;
  }

let percentile a p =
  assert (Array.length a > 0 && p >= 0.0 && p <= 1.0);
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then b.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (b.(lo) *. (1.0 -. frac)) +. (b.(hi) *. frac)
  end

let mean xs = (summarize xs).mean
let stddev xs = (summarize xs).stddev
