(** Multicore work distribution over OCaml 5 domains.

    A minimal deterministic parallel map: tasks are indexed, a shared
    atomic counter hands indices to worker domains, and each result is
    written to its own slot — so the output order is always the input
    order regardless of scheduling.  Used by the experiment harness to
    spread independent seeded repetitions across cores (bandwidth
    results are bit-identical to the sequential run because every
    repetition's RNG is pre-split before spawning; only wall-clock
    *timing* measurements become noisier under contention). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] evaluates [f] over [xs] on up to [domains]
    domains (default: sequential when [domains <= 1]).  [f] must not
    rely on shared mutable state.  Exceptions from [f] are re-raised in
    the caller after all domains join. *)

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
