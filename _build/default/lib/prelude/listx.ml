let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go hi []

let frange ~lo ~hi ~step =
  assert (step > 0.0);
  let rec go x acc =
    if x > hi +. (step /. 2.0) then List.rev acc else go (x +. step) (x :: acc)
  in
  go lo []

let sum_by f xs = List.fold_left (fun acc x -> acc +. f x) 0.0 xs
let isum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

let max_by f = function
  | [] -> invalid_arg "Listx.max_by: empty list"
  | x :: xs ->
    let best, _ =
      List.fold_left
        (fun (bx, bk) y ->
          let k = f y in
          if k > bk then (y, k) else (bx, bk))
        (x, f x) xs
    in
    best

let min_by f xs = max_by (fun x -> -.f x) xs

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let group_by key xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = key x in
      let cur = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (x :: cur))
    xs;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
