module G = Tdmd_graph.Digraph

type fat_tree = {
  graph : G.t;
  core : int list;
  aggregation : int list;
  edge : int list;
  hosts : int list;
}

let fat_tree k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Datacenter.fat_tree: k must be even, >= 2";
  let half = k / 2 in
  let n_core = half * half in
  let n_agg = k * half in
  let n_edge = k * half in
  let n_host = k * half * half in
  let n = n_core + n_agg + n_edge + n_host in
  let core i = i in
  let agg pod i = n_core + (pod * half) + i in
  let edge pod i = n_core + n_agg + (pod * half) + i in
  let host pod e i = n_core + n_agg + n_edge + (pod * half * half) + (e * half) + i in
  let g = G.create n in
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      (* Aggregation switch a of this pod uplinks to core group a. *)
      for c = 0 to half - 1 do
        G.add_undirected g (agg pod a) (core ((a * half) + c))
      done;
      (* Full bipartite agg–edge mesh within the pod. *)
      for e = 0 to half - 1 do
        G.add_undirected g (agg pod a) (edge pod e)
      done
    done;
    for e = 0 to half - 1 do
      for h = 0 to half - 1 do
        G.add_undirected g (edge pod e) (host pod e h)
      done
    done
  done;
  let range f count = List.init count f in
  {
    graph = g;
    core = range core n_core;
    aggregation = range (fun i -> n_core + i) n_agg;
    edge = range (fun i -> n_core + n_agg + i) n_edge;
    hosts = range (fun i -> n_core + n_agg + n_edge + i) n_host;
  }

type bcube = {
  graph : G.t;
  servers : int list;
  switches : int list;
}

let bcube ~n ~level =
  if n < 2 || level < 0 then invalid_arg "Datacenter.bcube: need n >= 2, level >= 0";
  let pow b e =
    let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
    go 1 e
  in
  let n_servers = pow n (level + 1) in
  let switches_per_layer = pow n level in
  let n_switches = (level + 1) * switches_per_layer in
  let g = G.create (n_servers + n_switches) in
  let switch layer idx = n_servers + (layer * switches_per_layer) + idx in
  (* Server s (base-n digits d_level … d_0) connects at layer l to the
     switch indexed by s with digit l removed. *)
  for s = 0 to n_servers - 1 do
    for l = 0 to level do
      let high = s / pow n (l + 1) in
      let low = s mod pow n l in
      let idx = (high * pow n l) + low in
      G.add_undirected g s (switch l idx)
    done
  done;
  {
    graph = g;
    servers = List.init n_servers (fun i -> i);
    switches = List.init n_switches (fun i -> n_servers + i);
  }
