open Tdmd_prelude
module G = Tdmd_graph.Digraph

type t = {
  graph : G.t;
  hubs : int list;
  monitors : int list;
}

let generate rng ~n =
  assert (n >= 2);
  let n_hubs = max (min 3 (n - 1)) (n / 6) in
  let n_hubs = min n_hubs (n - 1) in
  let g = G.create n in
  (* Hub backbone: ring plus random chords for redundancy. *)
  for h = 0 to n_hubs - 1 do
    if n_hubs > 1 then G.add_undirected g h ((h + 1) mod n_hubs)
  done;
  if n_hubs > 3 then
    for _ = 1 to n_hubs / 2 do
      let a = Rng.int rng n_hubs and b = Rng.int rng n_hubs in
      if a <> b && not (G.mem_edge g a b) then G.add_undirected g a b
    done;
  (* Monitors attach to a hub or to a previously placed monitor, giving
     the hub-and-spoke chains seen in measurement infrastructures. *)
  for v = n_hubs to n - 1 do
    let attach_to_hub = v = n_hubs || Rng.float rng 1.0 < 0.7 in
    let target =
      if attach_to_hub then Rng.int rng n_hubs else Rng.int_in rng n_hubs (v - 1)
    in
    G.add_undirected g v target;
    (* Occasional second uplink makes the general topology multipath. *)
    if Rng.float rng 1.0 < 0.25 then begin
      let alt = Rng.int rng n_hubs in
      if alt <> target && not (G.mem_edge g v alt) then G.add_undirected g v alt
    end
  done;
  {
    graph = g;
    hubs = List.init n_hubs (fun i -> i);
    monitors = List.init (n - n_hubs) (fun i -> n_hubs + i);
  }

let tree_of rng t =
  let root = Rng.choose rng (Array.of_list t.hubs) in
  Topo_general.spanning_tree rng t.graph ~root

let general_of rng t ~size =
  let n = G.vertex_count t.graph in
  let size = min size n in
  (* Grow a connected vertex set from a random hub by random frontier
     expansion, so the sample keeps the hub-centred structure. *)
  let start = Rng.choose rng (Array.of_list t.hubs) in
  let chosen = Hashtbl.create size in
  Hashtbl.add chosen start ();
  let frontier = ref (List.sort_uniq compare (G.succ t.graph start @ G.pred t.graph start)) in
  while Hashtbl.length chosen < size do
    let cands = List.filter (fun v -> not (Hashtbl.mem chosen v)) !frontier in
    match cands with
    | [] ->
      (* Disconnected remainder cannot happen (graph is connected), but
         guard by picking any unchosen vertex adjacent to the set. *)
      let v =
        List.find
          (fun v ->
            (not (Hashtbl.mem chosen v))
            && List.exists (fun u -> Hashtbl.mem chosen u) (G.succ t.graph v @ G.pred t.graph v))
          (Listx.range 0 (n - 1))
      in
      Hashtbl.add chosen v ();
      frontier := G.succ t.graph v @ G.pred t.graph v
    | _ ->
      let v = Rng.choose rng (Array.of_list cands) in
      Hashtbl.add chosen v ();
      frontier :=
        List.sort_uniq compare
          (List.filter (fun u -> not (Hashtbl.mem chosen u))
             (G.succ t.graph v @ G.pred t.graph v @ cands))
  done;
  let keep = Array.of_list (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) chosen [])) in
  let sub, mapping = G.induced t.graph keep in
  let dests = ref [] in
  Array.iteri
    (fun new_id old -> if List.mem old t.hubs then dests := new_id :: !dests)
    mapping;
  let dests = if !dests = [] then [ 0 ] else List.rev !dests in
  (sub, dests)
