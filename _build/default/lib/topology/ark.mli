(** Synthetic CAIDA Archipelago (Ark) style topology.

    The paper simulates on CAIDA's Ark measurement infrastructure
    (Fig. 8(a)) and "reduces" its tree (Fig. 8(b)) and general
    (Fig. 8(c)) test topologies from it.  The real monitor adjacency is
    not redistributable, so this module generates a structural stand-in:
    a small, densely connected mesh of hub vertices (continental vantage
    points) with chains/leaves of monitor vertices attached — the
    hierarchy that makes hub placement matter, which is the property the
    experiments exercise (see DESIGN.md §2). *)

open Tdmd_prelude

type t = {
  graph : Tdmd_graph.Digraph.t;
  hubs : int list;       (** densely meshed backbone vertices *)
  monitors : int list;   (** degree-1/2 measurement vertices *)
}

val generate : Rng.t -> n:int -> t
(** [generate rng ~n] builds an [n]-vertex Ark-like topology with
    roughly [max 3 (n/6)] hubs.  Always connected. *)

val tree_of : Rng.t -> t -> Tdmd_tree.Rooted_tree.t
(** The paper's Fig. 8(b): a spanning tree rooted at a hub (the red root
    that all tree-experiment flows target). *)

val general_of : Rng.t -> t -> size:int -> Tdmd_graph.Digraph.t * int list
(** The paper's Fig. 8(c): a connected subgraph of the requested size
    together with its destination vertices (red nodes — the hubs that
    survive into the subgraph, at least one). *)
