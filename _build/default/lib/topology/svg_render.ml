module G = Tdmd_graph.Digraph
module Rt = Tdmd_tree.Rooted_tree

let header ~width ~height =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n\
     <rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
    width height width height width height

let vertex_svg ~x ~y ~label ~is_box ~is_highlight =
  let fill = if is_highlight then "#d62728" else "#aec7e8" in
  let shape =
    if is_box then
      Printf.sprintf
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"16\" height=\"16\" fill=\"%s\" stroke=\"black\"/>"
        (x -. 8.0) (y -. 8.0) fill
    else
      Printf.sprintf
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"9\" fill=\"%s\" stroke=\"black\"/>" x y
        fill
  in
  Printf.sprintf
    "%s\n<text x=\"%.1f\" y=\"%.1f\" font-size=\"8\" text-anchor=\"middle\" dy=\"3\">%s</text>\n"
    shape x y label

let edge_svg (x1, y1) (x2, y2) =
  Printf.sprintf
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#888\" stroke-width=\"1\"/>\n"
    x1 y1 x2 y2

let emit_vertices buf positions ~boxes ~highlight n =
  for v = 0 to n - 1 do
    let x, y = positions.(v) in
    Buffer.add_string buf
      (vertex_svg ~x ~y ~label:(string_of_int v) ~is_box:(List.mem v boxes)
         ~is_highlight:(List.mem v highlight))
  done

let graph ?(highlight = []) ?(boxes = []) g =
  let n = G.vertex_count g in
  let size = max 300 (40 * n / 3) in
  let radius = (float_of_int size /. 2.0) -. 30.0 in
  let centre = float_of_int size /. 2.0 in
  let positions =
    Array.init n (fun v ->
        let angle = 2.0 *. Float.pi *. float_of_int v /. float_of_int (max n 1) in
        (centre +. (radius *. cos angle), centre +. (radius *. sin angle)))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ~width:size ~height:size);
  List.iter
    (fun e ->
      (* Draw each undirected link once. *)
      if e.G.src < e.G.dst || not (G.mem_edge g e.G.dst e.G.src) then
        Buffer.add_string buf (edge_svg positions.(e.G.src) positions.(e.G.dst)))
    (G.edges g);
  emit_vertices buf positions ~boxes ~highlight n;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let tree ?(highlight = []) ?(boxes = []) t =
  let n = Rt.size t in
  let height_levels = Rt.height t + 1 in
  (* Assign each vertex an x slot: leaves in left-to-right order, inner
     vertices centred over their children. *)
  let xs = Array.make n 0.0 in
  let next_leaf = ref 0 in
  let rec place v =
    match Rt.children t v with
    | [] ->
      xs.(v) <- float_of_int !next_leaf;
      incr next_leaf
    | children ->
      List.iter place children;
      let lo = xs.(List.hd children) in
      let hi = xs.(List.nth children (List.length children - 1)) in
      xs.(v) <- (lo +. hi) /. 2.0
  in
  place (Rt.root t);
  let leaves = max !next_leaf 1 in
  let width = max 300 (60 * leaves) in
  let height = max 200 (70 * height_levels) in
  let positions =
    Array.init n (fun v ->
        ( 30.0
          +. (xs.(v) *. (float_of_int (width - 60) /. float_of_int (max (leaves - 1) 1))),
          35.0 +. (float_of_int (Rt.depth t v) *. 60.0) ))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ~width ~height);
  for v = 0 to n - 1 do
    let p = Rt.parent t v in
    if p >= 0 then Buffer.add_string buf (edge_svg positions.(v) positions.(p))
  done;
  emit_vertices buf positions ~boxes ~highlight n;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
