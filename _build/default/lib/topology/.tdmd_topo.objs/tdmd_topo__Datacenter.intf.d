lib/topology/datacenter.mli: Tdmd_graph
