lib/topology/topo_stats.ml: Array Buffer Hashtbl List Option Printf String Tdmd_graph
