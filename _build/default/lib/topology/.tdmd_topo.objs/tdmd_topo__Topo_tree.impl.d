lib/topology/topo_tree.ml: Array List Listx Rng Tdmd_prelude Tdmd_tree
