lib/topology/datacenter.ml: List Tdmd_graph
