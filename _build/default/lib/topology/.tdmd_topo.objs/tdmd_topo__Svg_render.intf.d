lib/topology/svg_render.mli: Tdmd_graph Tdmd_tree
