lib/topology/topo_stats.mli: Tdmd_graph
