lib/topology/random_regular.mli: Tdmd_graph Tdmd_prelude
