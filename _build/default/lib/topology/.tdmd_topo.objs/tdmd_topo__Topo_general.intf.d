lib/topology/topo_general.mli: Rng Tdmd_graph Tdmd_prelude Tdmd_tree
