lib/topology/random_regular.ml: Array List Rng Tdmd_graph Tdmd_prelude
