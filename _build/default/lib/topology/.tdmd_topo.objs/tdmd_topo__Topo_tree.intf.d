lib/topology/topo_tree.mli: Rng Tdmd_prelude Tdmd_tree
