lib/topology/ark.ml: Array Hashtbl List Listx Rng Tdmd_graph Tdmd_prelude Topo_general
