lib/topology/ark.mli: Rng Tdmd_graph Tdmd_prelude Tdmd_tree
