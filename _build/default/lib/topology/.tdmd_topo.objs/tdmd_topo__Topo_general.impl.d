lib/topology/topo_general.ml: Array Float List Listx Queue Rng Tdmd_graph Tdmd_prelude Tdmd_tree
