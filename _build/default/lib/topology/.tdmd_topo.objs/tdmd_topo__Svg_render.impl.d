lib/topology/svg_render.ml: Array Buffer Float List Printf Tdmd_graph Tdmd_tree
