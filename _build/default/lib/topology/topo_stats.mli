(** Structural statistics of generated topologies — the numbers behind
    the paper's Fig. 8 panels (what the Ark-derived test networks look
    like), printed by the CLI and checked by tests. *)

type t = {
  vertices : int;
  undirected_links : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  diameter : float;           (** hop diameter (weights ignored) *)
  mean_distance : float;      (** mean pairwise hop distance *)
  degree_histogram : (int * int) list;  (** (degree, #vertices), ascending *)
}

val compute : Tdmd_graph.Digraph.t -> t
(** Degrees count undirected neighbours (arc pairs collapse). *)

val render : t -> string
