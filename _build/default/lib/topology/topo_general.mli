(** General topology generators (Sec. 6 experiments, Fig. 8(c)).

    Every generator returns a connected graph whose links are
    bidirectional (both arcs present), matching the paper's model.  All
    randomness is explicit. *)

open Tdmd_prelude

val erdos_renyi : Rng.t -> int -> p:float -> Tdmd_graph.Digraph.t
(** G(n, p) conditioned on connectivity: a random spanning tree is laid
    down first, then each remaining pair is linked with probability
    [p]. *)

val waxman :
  Rng.t -> int -> alpha:float -> beta:float -> Tdmd_graph.Digraph.t
(** Waxman (1988) random graph: vertices are uniform points in the unit
    square and a pair at distance [d] is linked with probability
    [alpha · exp (-d / (beta · L))] where [L = sqrt 2].  A spanning tree
    over nearest surviving neighbours keeps it connected. *)

val barabasi_albert : Rng.t -> int -> m:int -> Tdmd_graph.Digraph.t
(** Preferential attachment: each new vertex links to [m] distinct
    existing vertices chosen proportionally to degree. *)

val resize : Rng.t -> Tdmd_graph.Digraph.t -> int -> Tdmd_graph.Digraph.t
(** Grow by attaching new vertices to 1–2 random existing ones, or
    shrink by deleting random vertices whose removal keeps the graph
    connected — the paper's size sweep. *)

val spanning_tree : Rng.t -> Tdmd_graph.Digraph.t -> root:int -> Tdmd_tree.Rooted_tree.t
(** Random-order BFS spanning tree, used to "reduce" a general topology
    to the paper's tree topology (Fig. 8(b) from Fig. 8(a)). *)
