(** Data-center topologies named in the paper's Sec. 5 motivation:
    Fat-tree (Al-Fares et al., SIGCOMM 2008) and BCube (Guo et al.,
    SIGCOMM 2009).  Both are returned as bidirectional-link digraphs
    plus the vertex roles, so experiments can aggregate them into the
    paper's tree-structured view or use them directly as general
    topologies. *)

type fat_tree = {
  graph : Tdmd_graph.Digraph.t;
  core : int list;
  aggregation : int list;
  edge : int list;
  hosts : int list;
}

val fat_tree : int -> fat_tree
(** [fat_tree k] for even [k >= 2]: [k] pods, [(k/2)²] core switches,
    [k²/2] aggregation and edge switches, [k³/4] hosts. *)

type bcube = {
  graph : Tdmd_graph.Digraph.t;
  servers : int list;
  switches : int list;
}

val bcube : n:int -> level:int -> bcube
(** BCube(n, level): [n^(level+1)] servers; [level+1] layers of
    [n^level] n-port switches.  Servers connect to one switch per
    layer. *)
