(** Tree topology generators (Sec. 5 experiments, Fig. 8(b)).

    All generators are deterministic given the RNG, and always return a
    tree rooted at vertex [0] (the paper's red root: the common flow
    destination). *)

open Tdmd_prelude

val path : int -> Tdmd_tree.Rooted_tree.t
(** A chain of [n] vertices rooted at one end. *)

val star : int -> Tdmd_tree.Rooted_tree.t
(** Root plus [n-1] leaves. *)

val balanced : arity:int -> depth:int -> Tdmd_tree.Rooted_tree.t
(** Perfect [arity]-ary tree of the given depth ([depth = 0] is a single
    vertex). *)

val random_attachment : Rng.t -> int -> Tdmd_tree.Rooted_tree.t
(** Each new vertex attaches to a uniformly random existing vertex —
    produces the shallow, irregular trees typical of measured
    infrastructure. *)

val random_binary : Rng.t -> int -> Tdmd_tree.Rooted_tree.t
(** Like {!random_attachment} but parents are capped at two children
    (Sec. 5.1 presents the DP on binary trees). *)

val resize : Rng.t -> Tdmd_tree.Rooted_tree.t -> int -> Tdmd_tree.Rooted_tree.t
(** Grow or shrink to exactly [n] vertices by randomly inserting leaves
    or deleting existing leaves — the paper's topology-size sweep
    ("randomly inserting and deleting vertices").  The root is never
    deleted. *)
