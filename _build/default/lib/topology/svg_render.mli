(** Minimal SVG rendering of topologies and deployments.

    Circular layout for general graphs, layered layout for rooted
    trees.  Vertices carrying a middlebox are drawn as filled squares
    (the paper's Fig. 1 convention); flow sources can be highlighted.
    Output is a standalone [<svg>] document string. *)

val graph :
  ?highlight:int list ->
  ?boxes:int list ->
  Tdmd_graph.Digraph.t ->
  string
(** Circular layout.  [boxes]: middlebox vertices (squares);
    [highlight]: e.g. destination vertices (red fill). *)

val tree :
  ?highlight:int list ->
  ?boxes:int list ->
  Tdmd_tree.Rooted_tree.t ->
  string
(** Root on top, one row per depth, subtrees spread evenly. *)
