open Tdmd_prelude
module G = Tdmd_graph.Digraph

let attempt rng ~n ~degree =
  (* Configuration model: shuffle n*degree stubs, pair consecutively,
     reject self-loops and duplicates. *)
  let stubs = Array.concat (List.init n (fun v -> Array.make degree v)) in
  Rng.shuffle rng stubs;
  let g = G.create n in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i + 1 < Array.length stubs do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u = v || G.mem_edge g u v then ok := false
    else G.add_undirected g u v;
    i := !i + 2
  done;
  if !ok && G.is_connected_undirected g then Some g else None

let generate rng ~n ~degree =
  if degree < 1 || degree >= n then
    invalid_arg "Random_regular.generate: need 1 <= degree < n";
  if n * degree mod 2 <> 0 then
    invalid_arg "Random_regular.generate: n * degree must be even";
  let rec retry tries =
    if tries = 0 then
      invalid_arg "Random_regular.generate: no valid pairing found"
    else begin
      match attempt rng ~n ~degree with
      | Some g -> g
      | None -> retry (tries - 1)
    end
  in
  retry 2000
