open Tdmd_prelude
module G = Tdmd_graph.Digraph

let random_spanning_edges rng n =
  (* Random attachment over a shuffled vertex order: connected and
     uniform enough for experiment purposes. *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let edges = ref [] in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    edges := (order.(i), order.(j)) :: !edges
  done;
  !edges

let erdos_renyi rng n ~p =
  assert (n >= 1 && p >= 0.0 && p <= 1.0);
  let g = G.create n in
  List.iter (fun (u, v) -> G.add_undirected g u v) (random_spanning_edges rng n);
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (not (G.mem_edge g u v)) && Rng.float rng 1.0 < p then G.add_undirected g u v
    done
  done;
  g

let waxman rng n ~alpha ~beta =
  assert (n >= 1 && alpha > 0.0 && beta > 0.0);
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let dist u v = Float.hypot (xs.(u) -. xs.(v)) (ys.(u) -. ys.(v)) in
  let l = sqrt 2.0 in
  let g = G.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let prob = alpha *. exp (-.dist u v /. (beta *. l)) in
      if Rng.float rng 1.0 < prob then G.add_undirected g u v
    done
  done;
  (* Stitch components together through nearest cross-component pairs. *)
  let dsu = Tdmd_graph.Dsu.create n in
  List.iter (fun e -> ignore (Tdmd_graph.Dsu.union dsu e.G.src e.G.dst)) (G.edges g);
  while Tdmd_graph.Dsu.count dsu > 1 do
    let best = ref None in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if not (Tdmd_graph.Dsu.same dsu u v) then begin
          let d = dist u v in
          match !best with
          | Some (_, _, bd) when bd <= d -> ()
          | _ -> best := Some (u, v, d)
        end
      done
    done;
    match !best with
    | Some (u, v, _) ->
      G.add_undirected g u v;
      ignore (Tdmd_graph.Dsu.union dsu u v)
    | None -> assert false
  done;
  g

let barabasi_albert rng n ~m =
  assert (n >= 1 && m >= 1);
  let g = G.create n in
  let seed = min (m + 1) n in
  (* Initial clique of m+1 vertices. *)
  for u = 0 to seed - 1 do
    for v = u + 1 to seed - 1 do
      G.add_undirected g u v
    done
  done;
  (* Degree-proportional sampling via a repeated-endpoint urn. *)
  let urn = ref [] in
  for u = 0 to seed - 1 do
    for _ = 1 to max 1 (G.out_degree g u) do
      urn := u :: !urn
    done
  done;
  for v = seed to n - 1 do
    let targets = ref [] in
    let urn_arr = Array.of_list !urn in
    while List.length !targets < min m v do
      let u = Rng.choose rng urn_arr in
      if (not (List.mem u !targets)) && u <> v then targets := u :: !targets
    done;
    List.iter
      (fun u ->
        G.add_undirected g v u;
        urn := v :: u :: !urn)
      !targets
  done;
  g

let resize rng g n =
  assert (n >= 1);
  let cur = ref g in
  while G.vertex_count !cur < n do
    let old_n = G.vertex_count !cur in
    let bigger = G.create (old_n + 1) in
    List.iter (fun e -> G.add_edge ~weight:e.G.weight bigger e.G.src e.G.dst) (G.edges !cur);
    let links = 1 + Rng.int rng 2 in
    let chosen = Rng.sample_without_replacement rng old_n (min links old_n) in
    List.iter (fun u -> G.add_undirected bigger old_n u) chosen;
    cur := bigger
  done;
  while G.vertex_count !cur > n do
    let old_n = G.vertex_count !cur in
    (* Try random victims until one's removal keeps the graph connected. *)
    let rec attempt tries =
      if tries = 0 then None
      else begin
        let victim = Rng.int rng old_n in
        let keep = Array.of_list (List.filter (fun v -> v <> victim) (Listx.range 0 (old_n - 1))) in
        let candidate, _ = G.induced !cur keep in
        if G.is_connected_undirected candidate then Some candidate else attempt (tries - 1)
      end
    in
    match attempt (4 * old_n) with
    | Some smaller -> cur := smaller
    | None ->
      (* Extremely unlikely for our generators; fall back to removing a
         degree-1 vertex, which always preserves connectivity. *)
      let victim =
        List.find (fun v -> G.out_degree !cur v <= 1) (Listx.range 0 (old_n - 1))
      in
      let keep = Array.of_list (List.filter (fun v -> v <> victim) (Listx.range 0 (old_n - 1))) in
      let candidate, _ = G.induced !cur keep in
      cur := candidate
  done;
  !cur

let spanning_tree rng g ~root =
  let n = G.vertex_count g in
  let parents = Array.make n (-2) in
  parents.(root) <- -1;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    let neigh =
      Array.of_list (List.sort_uniq compare (G.succ g v @ G.pred g v))
    in
    Rng.shuffle rng neigh;
    Array.iter
      (fun u ->
        if parents.(u) = -2 then begin
          parents.(u) <- v;
          Queue.add u q
        end)
      neigh
  done;
  if Array.exists (fun p -> p = -2) parents then
    invalid_arg "Topo_general.spanning_tree: graph not connected";
  Tdmd_tree.Rooted_tree.of_parents ~root parents
