module G = Tdmd_graph.Digraph

type t = {
  vertices : int;
  undirected_links : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  diameter : float;
  mean_distance : float;
  degree_histogram : (int * int) list;
}

let undirected_degree g v =
  List.length (List.sort_uniq compare (G.succ g v @ G.pred g v))

let compute g =
  let n = G.vertex_count g in
  let degrees = Array.init n (undirected_degree g) in
  let links =
    List.fold_left
      (fun acc e ->
        let open G in
        if e.src < e.dst || not (mem_edge g e.dst e.src) then acc + 1 else acc)
      0 (G.edges g)
  in
  (* Hop metrics on the unit-weight view. *)
  let unit = G.create n in
  List.iter (fun e -> G.add_edge unit e.G.src e.G.dst) (G.edges g);
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    degrees;
  {
    vertices = n;
    undirected_links = links;
    min_degree = Array.fold_left min max_int degrees;
    max_degree = Array.fold_left max 0 degrees;
    mean_degree =
      Array.fold_left (fun acc d -> acc +. float_of_int d) 0.0 degrees
      /. float_of_int (max n 1);
    diameter = Tdmd_graph.Floyd_warshall.diameter unit;
    mean_distance = Tdmd_graph.Floyd_warshall.mean_finite_distance unit;
    degree_histogram =
      Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
      |> List.sort compare;
  }

let render t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "vertices:          %d\n" t.vertices;
  Printf.bprintf buf "undirected links:  %d\n" t.undirected_links;
  Printf.bprintf buf "degree:            min %d / mean %.2f / max %d\n" t.min_degree
    t.mean_degree t.max_degree;
  Printf.bprintf buf "hop diameter:      %g\n" t.diameter;
  Printf.bprintf buf "mean hop distance: %.2f\n" t.mean_distance;
  Printf.bprintf buf "degree histogram:  %s\n"
    (String.concat ", "
       (List.map (fun (d, c) -> Printf.sprintf "%d:%d" d c) t.degree_histogram));
  Buffer.contents buf
