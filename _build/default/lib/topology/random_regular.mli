(** Random regular graphs (Jellyfish-style data-center fabrics,
    Singla et al., NSDI 2012) via the pairing/configuration model with
    retry, conditioned on connectivity. *)

val generate :
  Tdmd_prelude.Rng.t -> n:int -> degree:int -> Tdmd_graph.Digraph.t
(** Connected [degree]-regular graph on [n] vertices (bidirectional
    links).  Requires [n * degree] even, [degree < n].
    @raise Invalid_argument on impossible parameters; retries
    internally on unlucky pairings. *)
