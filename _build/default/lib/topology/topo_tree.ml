open Tdmd_prelude
module Rt = Tdmd_tree.Rooted_tree

let of_parent_list parents = Rt.of_parents ~root:0 (Array.of_list parents)

let path n =
  assert (n >= 1);
  of_parent_list (List.init n (fun i -> i - 1))

let star n =
  assert (n >= 1);
  of_parent_list (List.init n (fun i -> if i = 0 then -1 else 0))

let balanced ~arity ~depth =
  assert (arity >= 1 && depth >= 0);
  (* Vertices in BFS order: vertex i's parent is (i-1)/arity. *)
  let rec count d acc pow = if d < 0 then acc else count (d - 1) (acc + pow) (pow * arity) in
  let n = count depth 0 1 in
  let parents = Array.init n (fun i -> if i = 0 then -1 else (i - 1) / arity) in
  Rt.of_parents ~root:0 parents

let random_attachment rng n =
  assert (n >= 1);
  let parents = Array.make n (-1) in
  for v = 1 to n - 1 do
    parents.(v) <- Rng.int rng v
  done;
  Rt.of_parents ~root:0 parents

let random_binary rng n =
  assert (n >= 1);
  let parents = Array.make n (-1) in
  let child_count = Array.make n 0 in
  for v = 1 to n - 1 do
    (* Rejection-sample a parent with spare capacity; at least vertex
       v-1 always has < 2 children right after being added, so the set
       of candidates is never empty. *)
    let candidates =
      List.filter (fun u -> child_count.(u) < 2) (Listx.range 0 (v - 1))
    in
    let arr = Array.of_list candidates in
    let p = Rng.choose rng arr in
    parents.(v) <- p;
    child_count.(p) <- child_count.(p) + 1
  done;
  Rt.of_parents ~root:0 parents

let resize rng tree n =
  assert (n >= 1);
  let cur = ref tree in
  while Rt.size !cur < n do
    let sz = Rt.size !cur in
    let parents = Array.make (sz + 1) (-1) in
    for v = 0 to sz - 1 do
      parents.(v) <- Rt.parent !cur v
    done;
    parents.(sz) <- Rng.int rng sz;
    cur := Rt.of_parents ~root:(Rt.root !cur) parents
  done;
  while Rt.size !cur > n do
    let sz = Rt.size !cur in
    let root = Rt.root !cur in
    let doomed =
      let ls = List.filter (fun v -> v <> root) (Rt.leaves !cur) in
      Rng.choose rng (Array.of_list ls)
    in
    (* Renumber: drop [doomed], shift higher ids down by one. *)
    let remap v = if v > doomed then v - 1 else v in
    let parents = Array.make (sz - 1) (-1) in
    for v = 0 to sz - 1 do
      if v <> doomed then begin
        let p = Rt.parent !cur v in
        parents.(remap v) <- (if p = -1 then -1 else remap p)
      end
    done;
    cur := Rt.of_parents ~root:(remap root) parents
  done;
  !cur
