(** Min-heap over the integer keys [0 .. n-1] with float priorities and
    O(log n) [decrease]/[remove].

    Dijkstra uses [decrease]; HAT uses [remove] when a merge invalidates
    every pair involving a vertex.  Each key may be present at most once. *)

type t

val create : int -> t
(** [create n] supports keys [0 .. n-1], initially empty. *)

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val push : t -> int -> float -> unit
(** @raise Invalid_argument if the key is already present or out of
    range. *)

val decrease : t -> int -> float -> unit
(** [decrease t key prio] lowers [key]'s priority.
    @raise Invalid_argument if absent or if [prio] is larger than the
    current priority. *)

val update : t -> int -> float -> unit
(** Set a present key's priority to an arbitrary new value (restoring the
    heap either way), or insert it if absent. *)

val remove : t -> int -> unit
(** Remove a key if present; no-op otherwise. *)

val peek : t -> (int * float) option
val pop : t -> (int * float) option
val priority : t -> int -> float
(** @raise Not_found if the key is absent. *)
