lib/heap/pairing_heap.ml: List
