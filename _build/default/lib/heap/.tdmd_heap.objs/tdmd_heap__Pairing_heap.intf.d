lib/heap/pairing_heap.mli:
