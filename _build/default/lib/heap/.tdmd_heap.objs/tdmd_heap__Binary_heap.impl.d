lib/heap/binary_heap.ml: Array List Obj
