lib/heap/indexed_heap.ml: Array
