lib/heap/indexed_heap.mli:
