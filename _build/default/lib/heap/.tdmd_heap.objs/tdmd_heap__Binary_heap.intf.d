lib/heap/binary_heap.mli:
