type t = {
  keys : int array;          (* heap slot -> key *)
  prio : float array;        (* heap slot -> priority *)
  pos : int array;           (* key -> heap slot, or -1 *)
  mutable size : int;
}

let create n =
  {
    keys = Array.make (max n 1) (-1);
    prio = Array.make (max n 1) 0.0;
    pos = Array.make (max n 1) (-1);
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let mem t key = key >= 0 && key < Array.length t.pos && t.pos.(key) >= 0

let swap t i j =
  let ki = t.keys.(i) and kj = t.keys.(j) in
  t.keys.(i) <- kj;
  t.keys.(j) <- ki;
  let pi = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- pi;
  t.pos.(kj) <- i;
  t.pos.(ki) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.size && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key p =
  if key < 0 || key >= Array.length t.pos then
    invalid_arg "Indexed_heap.push: key out of range";
  if t.pos.(key) >= 0 then invalid_arg "Indexed_heap.push: duplicate key";
  let i = t.size in
  t.size <- t.size + 1;
  t.keys.(i) <- key;
  t.prio.(i) <- p;
  t.pos.(key) <- i;
  sift_up t i

let decrease t key p =
  if not (mem t key) then invalid_arg "Indexed_heap.decrease: absent key";
  let i = t.pos.(key) in
  if p > t.prio.(i) then invalid_arg "Indexed_heap.decrease: larger priority";
  t.prio.(i) <- p;
  sift_up t i

let remove t key =
  if mem t key then begin
    let i = t.pos.(key) in
    let last = t.size - 1 in
    swap t i last;
    t.size <- last;
    t.pos.(key) <- -1;
    if i < t.size then begin
      sift_down t i;
      sift_up t i
    end
  end

let update t key p =
  if mem t key then begin
    let i = t.pos.(key) in
    t.prio.(i) <- p;
    sift_down t i;
    sift_up t t.pos.(key)
  end
  else push t key p

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.prio.(0))

let pop t =
  match peek t with
  | None -> None
  | Some (k, p) ->
    remove t k;
    Some (k, p)

let priority t key =
  if not (mem t key) then raise Not_found;
  t.prio.(t.pos.(key))
