(** Persistent pairing heap (min-heap).

    A simple persistent alternative to {!Binary_heap}; the property tests
    drain both against a sorted list to cross-check each other.  [merge]
    is O(1); [pop] is amortised O(log n). *)

type 'a t

val empty : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> 'a -> 'a t
val merge : 'a t -> 'a t -> 'a t
(** Both heaps must have been created with the same comparison. *)

val peek : 'a t -> 'a option
val pop : 'a t -> ('a * 'a t) option
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
