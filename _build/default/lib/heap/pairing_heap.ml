type 'a node = Leaf | Node of 'a * 'a node list

type 'a t = { cmp : 'a -> 'a -> int; root : 'a node; size : int }

let empty ~cmp = { cmp; root = Leaf; size = 0 }

let is_empty t = t.root = Leaf
let length t = t.size

let meld cmp a b =
  match (a, b) with
  | Leaf, h | h, Leaf -> h
  | Node (x, xs), Node (y, ys) ->
    if cmp x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

let push t x =
  { t with root = meld t.cmp (Node (x, [])) t.root; size = t.size + 1 }

let merge a b =
  { cmp = a.cmp; root = meld a.cmp a.root b.root; size = a.size + b.size }

let peek t = match t.root with Leaf -> None | Node (x, _) -> Some x

(* Two-pass pairing of the root's children. *)
let rec merge_pairs cmp = function
  | [] -> Leaf
  | [ h ] -> h
  | h1 :: h2 :: rest -> meld cmp (meld cmp h1 h2) (merge_pairs cmp rest)

let pop t =
  match t.root with
  | Leaf -> None
  | Node (x, children) ->
    Some (x, { t with root = merge_pairs t.cmp children; size = t.size - 1 })

let of_list ~cmp xs = List.fold_left push (empty ~cmp) xs

let to_sorted_list t =
  let rec drain t acc =
    match pop t with None -> List.rev acc | Some (x, t') -> drain t' (x :: acc)
  in
  drain t []
