(** Array-based polymorphic binary min-heap.

    The ordering is supplied at creation time; [pop] returns the minimum
    element under that ordering.  Used by HAT (Alg. 2's min-heap of merge
    penalties) and as the reference implementation the property tests
    cross-check the pairing heap against. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Heapify in O(n). *)

val to_sorted_list : 'a t -> 'a list
(** Drains the heap (destructive) and returns elements in ascending
    order. *)
