type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 16) ~cmp () =
  { cmp; data = Array.make (max capacity 1) (Obj.magic 0); size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (2 * cap) t.data.(0) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    if t.size > 0 then sift_down t 0;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Binary_heap.pop_exn: empty heap"

let of_list ~cmp xs =
  match xs with
  | [] -> create ~cmp ()
  | _ ->
    let data = Array.of_list xs in
    let t = { cmp; data; size = Array.length data } in
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done;
    t

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
