(** Analytic bounds on the optimum b(P{^*}) used to sanity-band every
    solver (and to normalise bench output).

    From Lemma 1: with unlimited middleboxes the bandwidth cannot go
    below λ·Σ r_f·|p_f| (every flow served at its source), and with
    none it is exactly Σ r_f·|p_f|.  With a budget k, submodularity of
    the decrement gives d(P) ≤ Σ_{v∈P} d({v}), so the sum of the k
    largest singleton decrements upper-bounds the achievable decrement —
    a valid k-aware lower bound on bandwidth. *)

type t = {
  unprocessed : float;        (** Σ r_f·|p_f| — no middlebox at all *)
  all_sources : float;        (** λ·Σ r_f·|p_f| — Lemma 1's floor *)
  k_lower : float;            (** max(all_sources, volume − top-k singleton decrements) *)
  k_upper : float;            (** bandwidth of a greedy-cover deployment of ≤ k boxes,
                                  or [unprocessed] when none exists *)
}

val compute : k:int -> Instance.t -> t

val check : k:int -> Instance.t -> float -> bool
(** [check ~k inst bw]: does a reported feasible bandwidth fall inside
    [k_lower -. eps, unprocessed +. eps]?  Used by property tests as a
    cheap solver sanity net. *)
