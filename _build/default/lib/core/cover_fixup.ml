let best_cover_vertex instance chosen unserved =
  let n = Instance.vertex_count instance in
  let best = ref (-1) and best_cover = ref 0 in
  for v = 0 to n - 1 do
    if not (List.mem v chosen) then begin
      let c =
        List.length (List.filter (fun f -> Tdmd_flow.Flow.mem_vertex f v) unserved)
      in
      if c > !best_cover then begin
        best := v;
        best_cover := c
      end
    end
  done;
  if !best < 0 then None else Some !best

let within instance ~chosen ~budget =
  let feasible vs = Allocation.unserved instance (Placement.of_list vs) = [] in
  let rec extend vs =
    if feasible vs || List.length vs >= budget then vs
    else begin
      match
        best_cover_vertex instance vs
          (Allocation.unserved instance (Placement.of_list vs))
      with
      | None -> vs
      | Some v -> extend (vs @ [ v ])
    end
  in
  (* Keep ever-shorter prefixes (dropping the lowest-value picks first)
     until covering picks fit in the budget. *)
  let rec attempt kept fallback =
    let candidate = extend kept in
    let fallback = match fallback with Some f -> Some f | None -> Some candidate in
    if feasible candidate then candidate
    else begin
      match List.rev kept with
      | [] -> (match fallback with Some f -> f | None -> candidate)
      | _ :: rest_rev -> attempt (List.rev rest_rev) fallback
    end
  in
  attempt chosen None
