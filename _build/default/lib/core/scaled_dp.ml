module Flow = Tdmd_flow.Flow

type report = {
  placement : Placement.t;
  bandwidth : float;
  scaled_states : int;
  feasible : bool;
}

let solve ~k ~theta inst =
  if theta < 1 then invalid_arg "Scaled_dp.solve: theta must be >= 1";
  let scaled_flows =
    Array.to_list inst.Instance.Tree.flows
    |> List.map (fun f ->
           let rate = (f.Flow.rate + theta - 1) / theta in
           Flow.make ~id:f.Flow.id ~rate ~path:(Array.to_list f.Flow.path))
  in
  let scaled =
    Instance.Tree.make ~tree:inst.Instance.Tree.tree ~flows:scaled_flows
      ~lambda:inst.Instance.Tree.lambda
  in
  let r = Dp.solve ~k scaled in
  let general = Instance.Tree.to_general inst in
  {
    placement = r.Dp.placement;
    bandwidth = Bandwidth.total general r.Dp.placement;
    scaled_states = r.Dp.states;
    feasible = r.Dp.feasible;
  }
