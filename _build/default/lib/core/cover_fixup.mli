(** Feasibility fix-up shared by the budgeted solvers.

    The paper's evaluation only scores feasible deployments; when a
    ranking-based selection leaves flows unserved within the budget k,
    the walkthrough of Fig. 1 (k = 2) shows the paper swapping the
    lowest-value pick for one that covers the stragglers.  [within]
    implements exactly that: spend leftover budget on covering picks
    (most unserved flows first, as the set-cover greedy does), then if
    still infeasible, drop the latest picks one at a time and re-cover. *)

val best_cover_vertex : Instance.t -> int list -> Tdmd_flow.Flow.t list -> int option
(** Vertex covering the most of the given unserved flows, excluding
    already-chosen ones; [None] if no vertex covers any. *)

val within : Instance.t -> chosen:int list -> budget:int -> int list
(** [within inst ~chosen ~budget] takes picks in selection order (most
    recent last) and returns a selection-order list of size <= budget
    that is feasible whenever any feasible deployment of size <= budget
    containing a prefix of [chosen] exists. *)
