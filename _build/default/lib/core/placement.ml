type t = int list

let of_list vs = List.sort_uniq compare vs
let empty = []
let size = List.length
let mem t v = List.mem v t
let add t v = of_list (v :: t)
let remove t v = List.filter (fun u -> u <> v) t
let union a b = of_list (a @ b)
let to_list t = t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    t
