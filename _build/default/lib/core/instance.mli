(** TDMD problem instances (paper Sec. 3).

    An instance bundles the network, the flow set and the middlebox's
    traffic-changing ratio λ.  The middlebox budget [k] is a solver
    parameter, not part of the instance, because the experiments sweep
    it.  [Tree] instances additionally carry the rooted view required by
    the Sec. 5 solvers and enforce the Sec. 5 preconditions (sources are
    leaves, destination is the root). *)

type t = private {
  graph : Tdmd_graph.Digraph.t;
  flows : Tdmd_flow.Flow.t array;
  lambda : float;  (** traffic-changing ratio, 0 ≤ λ ≤ 1 *)
}

val make :
  graph:Tdmd_graph.Digraph.t ->
  flows:Tdmd_flow.Flow.t list ->
  lambda:float ->
  t
(** Validates λ ∈ [0, 1] and every flow path against the graph.
    @raise Invalid_argument on violations. *)

val vertex_count : t -> int
val flow_count : t -> int
val flows : t -> Tdmd_flow.Flow.t list
val total_rate : t -> int
val total_path_volume : t -> int
(** Σ_f r_f·|p_f|: the bandwidth with no middlebox deployed (Lemma 1's
    max b(P)). *)

module Tree : sig
  type general = t

  type t = private {
    tree : Tdmd_tree.Rooted_tree.t;
    flows : Tdmd_flow.Flow.t array;  (** merged per source, see [make] *)
    lambda : float;
  }

  val make :
    tree:Tdmd_tree.Rooted_tree.t ->
    flows:Tdmd_flow.Flow.t list ->
    lambda:float ->
    t
  (** Checks that each flow runs from a leaf up to the root along tree
      edges, and merges flows sharing a source (paper Sec. 5: same-leaf
      flows are one flow for the solvers).
      @raise Invalid_argument on violations. *)

  val to_general : t -> general
  (** The same instance viewed as a general one (used to cross-check
      tree solvers against general ones in tests). *)

  val subtree_rate : t -> int array
  (** Per-vertex total rate of flows sourced inside the vertex's
      subtree (the DP's R_v). *)

  val source_rate : t -> int array
  (** Per-vertex total rate of flows sourced exactly there. *)
end
