open Tdmd_prelude

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  retries : int;
}

let report_of instance ~retries placement =
  {
    placement;
    bandwidth = Bandwidth.total instance placement;
    feasible = Allocation.is_feasible instance placement;
    retries;
  }

let random rng ?(attempts = 200) ~k instance =
  let n = Instance.vertex_count instance in
  let k = min k n in
  let draw () = Placement.of_list (Rng.sample_without_replacement rng n k) in
  let rec attempt i =
    let p = draw () in
    if Allocation.is_feasible instance p then (p, i)
    else if i >= attempts then
      (* Fall back: keep a random half-prefix, then covering picks. *)
      let seed = Rng.sample_without_replacement rng n (max 0 (k - (k / 2))) in
      (Placement.of_list (Cover_fixup.within instance ~chosen:seed ~budget:k), i)
    else attempt (i + 1)
  in
  let placement, retries = attempt 0 in
  report_of instance ~retries placement

let best_effort ~k instance =
  let n = Instance.vertex_count instance in
  let scored =
    List.map
      (fun v -> (v, Bandwidth.marginal instance Placement.empty v))
      (Listx.range 0 (n - 1))
  in
  let ranked =
    List.stable_sort (fun (_, a) (_, b) -> compare b a) scored
    |> List.map fst
  in
  let chosen =
    Cover_fixup.within instance ~chosen:(Listx.take k ranked) ~budget:k
  in
  report_of instance ~retries:0 (Placement.of_list chosen)
