module Flow = Tdmd_flow.Flow

type spec = { ratios : float array }

let make_spec ratios =
  if ratios = [] then invalid_arg "Chain.make_spec: empty chain";
  List.iter
    (fun r -> if r < 0.0 then invalid_arg "Chain.make_spec: negative ratio")
    ratios;
  { ratios = Array.of_list ratios }

type deployment = (int * int) list

let normalize pairs = List.sort_uniq compare pairs

type flow_service = {
  flow_id : int;
  stages : (int * int) list;
  complete : bool;
  consumption : float;
}

(* Cumulative rate multiplier after the first [i] chain stages. *)
let prefix_ratio spec i =
  let acc = ref 1.0 in
  for j = 0 to i - 1 do
    acc := !acc *. spec.ratios.(j)
  done;
  !acc

let serve_flow spec deployment f =
  let m = Array.length spec.ratios in
  let path = f.Flow.path in
  let rate0 = float_of_int f.Flow.rate in
  let stages = ref [] in
  let next = ref 0 in
  let consumption = ref 0.0 in
  for i = 0 to Array.length path - 1 do
    (* Consume instances at this vertex in chain order. *)
    let continue = ref true in
    while !continue && !next < m do
      if List.mem (path.(i), !next) deployment then begin
        stages := (!next, path.(i)) :: !stages;
        incr next
      end
      else continue := false
    done;
    if i < Array.length path - 1 then
      consumption := !consumption +. (rate0 *. prefix_ratio spec !next)
  done;
  {
    flow_id = f.Flow.id;
    stages = List.rev !stages;
    complete = !next = m;
    consumption = !consumption;
  }

let allocate spec instance deployment =
  let deployment = normalize deployment in
  let services =
    Array.to_list (Array.map (serve_flow spec deployment) instance.Instance.flows)
  in
  (services, Tdmd_prelude.Listx.sum_by (fun s -> s.consumption) services)

let feasible spec instance deployment =
  let services, _ = allocate spec instance deployment in
  List.for_all (fun s -> s.complete) services

(* Optimal positions for a lone flow: dp.(i).(q) = minimal consumption
   of the first q edges having placed the first i types at offsets
   <= q.  Transition: either advance one edge at the current prefix
   rate, or place the next type at the current offset. *)
let single_flow spec ~rate ~hops =
  assert (rate > 0 && hops >= 0);
  let m = Array.length spec.ratios in
  let r = float_of_int rate in
  let dp = Array.make_matrix (m + 1) (hops + 1) infinity in
  let from = Array.make_matrix (m + 1) (hops + 1) `None in
  dp.(0).(0) <- 0.0;
  for i = 0 to m do
    for q = 0 to hops do
      let cur = dp.(i).(q) in
      if cur < infinity then begin
        if q < hops then begin
          let cost = cur +. (r *. prefix_ratio spec i) in
          if cost < dp.(i).(q + 1) then begin
            dp.(i).(q + 1) <- cost;
            from.(i).(q + 1) <- `Edge
          end
        end;
        if i < m && cur < dp.(i + 1).(q) then begin
          dp.(i + 1).(q) <- cur;
          from.(i + 1).(q) <- `Place
        end
      end
    done
  done;
  (* Trace back the positions of each placement. *)
  let rec walk i q acc =
    if i = 0 && q = 0 then acc
    else begin
      match from.(i).(q) with
      | `Edge -> walk i (q - 1) acc
      | `Place -> walk (i - 1) q (q :: acc)
      | `None -> assert false
    end
  in
  (walk m hops [], dp.(m).(hops))

type report = {
  deployment : deployment;
  bandwidth : float;
  feasible : bool;
}

let greedy ~k spec instance =
  let n = Instance.vertex_count instance in
  let m = Array.length spec.ratios in
  let eval d = snd (allocate spec instance d) in
  let all_pairs =
    List.concat_map
      (fun v -> List.init m (fun t -> (v, t)))
      (Tdmd_prelude.Listx.range 0 (n - 1))
  in
  let rec rounds chosen current =
    if List.length chosen >= k then chosen
    else begin
      let best = ref None in
      List.iter
        (fun pair ->
          if not (List.mem pair chosen) then begin
            let bw = eval (normalize (pair :: chosen)) in
            match !best with
            | Some (_, b) when b <= bw -> ()
            | _ -> if bw < current -. 1e-9 then best := Some (pair, bw)
          end)
        all_pairs;
      match !best with
      | None -> chosen
      | Some (pair, bw) -> rounds (pair :: chosen) bw
    end
  in
  let chosen = rounds [] (eval []) in
  (* Covering fix-up: complete the chains of unfinished flows with the
     pair that completes the most stages, budget permitting. *)
  let rec cover chosen =
    if List.length chosen >= k || feasible spec instance (normalize chosen) then chosen
    else begin
      let services, _ = allocate spec instance (normalize chosen) in
      let progress pair =
        let services', _ = allocate spec instance (normalize (pair :: chosen)) in
        List.fold_left2
          (fun acc before after ->
            acc + (List.length after.stages - List.length before.stages))
          0 services services'
      in
      let candidates = List.filter (fun p -> not (List.mem p chosen)) all_pairs in
      match candidates with
      | [] -> chosen
      | _ ->
        let best = Tdmd_prelude.Listx.max_by (fun p -> float_of_int (progress p)) candidates in
        if progress best <= 0 then chosen else cover (best :: chosen)
    end
  in
  let chosen = normalize (cover chosen) in
  {
    deployment = chosen;
    bandwidth = eval chosen;
    feasible = feasible spec instance chosen;
  }
