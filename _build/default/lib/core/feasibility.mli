(** Feasibility of TDMD deployments (paper Theorem 1).

    Checking a *given* deployment is linear (Theorem 1's first step);
    deciding whether *some* deployment of k boxes serves all flows is
    NP-hard via set cover — this module wires the instance to the
    {!Tdmd_setcover} reductions so the hardness construction itself is
    executable and tested. *)

val check : Instance.t -> Placement.t -> bool
(** O(Σ|p_f|): every flow has a middlebox on its path. *)

val to_setcover : Instance.t -> Tdmd_setcover.Setcover.t
(** Backward reduction: universe = flows, set v = flows through v. *)

val feasible_exists : Instance.t -> k:int -> bool
(** Exact decision via {!Tdmd_setcover.Setcover.exact} (small instances
    only, ≤ 62 flows). *)

val min_middleboxes : Instance.t -> int
(** Exact minimum k for which a feasible deployment exists. *)

val greedy_cover : Instance.t -> Placement.t option
(** ln(n)-approximate cover via the set-cover greedy — an upper bound
    on {!min_middleboxes} at any scale. *)
