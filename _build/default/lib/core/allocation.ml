module Flow = Tdmd_flow.Flow

type serving =
  | Unserved
  | Served_at of { vertex : int; l : int }

let serve placement f =
  let path = f.Flow.path in
  let rec scan i =
    if i = Array.length path then Unserved
    else if Placement.mem placement path.(i) then Served_at { vertex = path.(i); l = i }
    else scan (i + 1)
  in
  scan 0

let all instance placement =
  Array.map (serve placement) instance.Instance.flows

let is_feasible instance placement =
  Array.for_all
    (fun f -> serve placement f <> Unserved)
    instance.Instance.flows

let unserved instance placement =
  Array.to_list instance.Instance.flows
  |> List.filter (fun f -> serve placement f = Unserved)
