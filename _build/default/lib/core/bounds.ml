type t = {
  unprocessed : float;
  all_sources : float;
  k_lower : float;
  k_upper : float;
}

let compute ~k instance =
  let unprocessed = float_of_int (Instance.total_path_volume instance) in
  let lambda = instance.Instance.lambda in
  let all_sources = lambda *. unprocessed in
  let n = Instance.vertex_count instance in
  let singles =
    List.init n (fun v -> Bandwidth.marginal instance Placement.empty v)
    |> List.sort (fun a b -> compare b a)
  in
  let top_k = Tdmd_prelude.Listx.sum_by Fun.id (Tdmd_prelude.Listx.take k singles) in
  let k_lower = Float.max all_sources (unprocessed -. top_k) in
  let k_upper =
    match Feasibility.greedy_cover instance with
    | Some cover when Placement.size cover <= k ->
      (* A feasible deployment exists within budget; its bandwidth is an
         upper bound on the optimum. *)
      Bandwidth.total instance cover
    | _ -> unprocessed
  in
  { unprocessed; all_sources; k_lower; k_upper }

let check ~k instance bw =
  let b = compute ~k instance in
  bw >= b.k_lower -. 1e-6 && bw <= b.unprocessed +. 1e-6
