(** Flow allocation F (paper Sec. 3.1).

    Once the deployment P is fixed, the optimal allocation is forced:
    each flow is served by the deployed middlebox *nearest its source*
    (maximal l_v(f)) — every packet is processed exactly once, as early
    as possible.  Because paths are listed source-first, that middlebox
    is the first placed vertex along the path. *)

type serving =
  | Unserved                       (** no middlebox on the flow's path *)
  | Served_at of { vertex : int; l : int }
      (** serving vertex and its l_v(f) edge offset from the source *)

val serve : Placement.t -> Tdmd_flow.Flow.t -> serving

val all : Instance.t -> Placement.t -> serving array
(** Indexed like the instance's flow array. *)

val is_feasible : Instance.t -> Placement.t -> bool
(** Every flow served (paper Eq. 4) — the property whose k-budgeted
    check is NP-hard (Theorem 1). *)

val unserved : Instance.t -> Placement.t -> Tdmd_flow.Flow.t list
