lib/core/allocation.ml: Array Instance List Placement Tdmd_flow
