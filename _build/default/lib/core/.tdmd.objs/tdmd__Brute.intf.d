lib/core/brute.mli: Instance Placement
