lib/core/allocation.mli: Instance Placement Tdmd_flow
