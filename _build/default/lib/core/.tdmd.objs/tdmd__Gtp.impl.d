lib/core/gtp.ml: Allocation Bandwidth Cover_fixup Instance Placement Tdmd_submod
