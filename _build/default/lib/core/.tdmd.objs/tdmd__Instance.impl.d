lib/core/instance.ml: Array List Tdmd_flow Tdmd_graph Tdmd_tree
