lib/core/dp_binary.mli: Instance Placement
