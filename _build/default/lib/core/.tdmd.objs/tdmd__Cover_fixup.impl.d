lib/core/cover_fixup.ml: Allocation Instance List Placement Tdmd_flow
