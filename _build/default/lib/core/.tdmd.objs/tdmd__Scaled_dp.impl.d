lib/core/scaled_dp.ml: Array Bandwidth Dp Instance List Placement Tdmd_flow
