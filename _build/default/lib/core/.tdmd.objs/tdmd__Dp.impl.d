lib/core/dp.ml: Array Instance List Placement Tdmd_tree
