lib/core/dp.mli: Instance Placement
