lib/core/feasibility.mli: Instance Placement Tdmd_setcover
