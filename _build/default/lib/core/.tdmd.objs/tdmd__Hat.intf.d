lib/core/hat.mli: Instance Placement
