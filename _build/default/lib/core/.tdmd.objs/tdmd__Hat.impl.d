lib/core/hat.ml: Allocation Array Bandwidth Instance List Placement Tdmd_heap Tdmd_tree
