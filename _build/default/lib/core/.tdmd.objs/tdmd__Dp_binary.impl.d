lib/core/dp_binary.ml: Array Instance List Option Placement Tdmd_tree
