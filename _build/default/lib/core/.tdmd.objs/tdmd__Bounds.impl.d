lib/core/bounds.ml: Bandwidth Feasibility Float Fun Instance List Placement Tdmd_prelude
