lib/core/cover_fixup.mli: Instance Tdmd_flow
