lib/core/chain.mli: Instance
