lib/core/placement.ml: Format List
