lib/core/incremental.mli: Instance Placement Tdmd_flow Tdmd_graph
