lib/core/brute.ml: Allocation Bandwidth Instance Placement
