lib/core/bandwidth.ml: Allocation Array Instance Placement Tdmd_flow Tdmd_submod
