lib/core/local_search.ml: Allocation Bandwidth Instance List Placement
