lib/core/baselines.ml: Allocation Bandwidth Cover_fixup Instance List Listx Placement Rng Tdmd_prelude
