lib/core/bandwidth.mli: Allocation Instance Placement Tdmd_flow Tdmd_submod
