lib/core/feasibility.ml: Allocation Instance List Placement Tdmd_setcover
