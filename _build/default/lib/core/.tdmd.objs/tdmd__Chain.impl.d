lib/core/chain.ml: Array Instance List Tdmd_flow Tdmd_prelude
