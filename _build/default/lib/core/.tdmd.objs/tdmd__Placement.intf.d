lib/core/placement.mli: Format
