lib/core/local_search.mli: Instance Placement
