lib/core/scaled_dp.mli: Instance Placement
