lib/core/incremental.ml: Allocation Array Bandwidth Cover_fixup Instance List Placement Tdmd_flow Tdmd_graph Tdmd_prelude
