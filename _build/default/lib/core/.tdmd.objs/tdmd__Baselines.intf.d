lib/core/baselines.mli: Instance Placement Tdmd_prelude
