lib/core/gtp.mli: Instance Placement
