lib/core/instance.mli: Tdmd_flow Tdmd_graph Tdmd_tree
