lib/core/bounds.mli: Instance
