lib/core/capacitated.mli: Instance Placement
