lib/core/capacitated.ml: Allocation Array Bandwidth Hashtbl Instance List Placement Tdmd_flow
