let check instance placement = Allocation.is_feasible instance placement

let to_setcover instance =
  Tdmd_setcover.Reduction.of_flows
    ~vertex_count:(Instance.vertex_count instance)
    (Instance.flows instance)

let feasible_exists instance ~k =
  Tdmd_setcover.Setcover.decision (to_setcover instance) ~k

let min_middleboxes instance =
  match Tdmd_setcover.Setcover.exact (to_setcover instance) with
  | Some cover -> List.length cover
  | None -> invalid_arg "Feasibility.min_middleboxes: some flow visits no vertex"

let greedy_cover instance =
  match Tdmd_setcover.Setcover.greedy (to_setcover instance) with
  | Some cover -> Some (Placement.of_list cover)
  | None -> None
