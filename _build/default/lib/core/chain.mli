(** Extension: totally-ordered service chains of traffic-changing
    middleboxes.

    The paper deliberately narrows to a single middlebox type per flow
    (Sec. 1), citing the chain problem it grew out of (Ma et al.,
    INFOCOM 2017 [22]; Mehraghdam et al. [23]).  This module implements
    that generalisation: every flow must traverse one instance of each
    type [t_0 < t_1 < … < t_{m-1}] *in order*; type [i] multiplies the
    flow's rate by its own ratio [λ_i ≥ 0] (diminishing or inflating).
    A vertex may host instances of several types; the instance budget k
    counts (vertex, type) pairs.

    - {!single_flow}: the optimal placement for one flow on its own
      path — a direct DP over (position, types placed), the [22]-style
      building block (tested against brute-force position enumeration);
    - {!allocate}: the forced earliest-instance allocation for a fixed
      deployment (each flow consumes, in chain order, the first
      instance of its next-needed type along its path);
    - {!greedy}: multi-flow shared placement — GTP's greedy lifted to
      (vertex, type) ground elements.  The chained objective is no
      longer submodular in general, so the (1 − 1/e) bound does not
      carry over; tests bound it by single-type equivalence instead. *)

type spec = { ratios : float array }
(** One entry per chain position; [ratios.(i) >= 0]. *)

val make_spec : float list -> spec
(** @raise Invalid_argument on empty or negative ratios. *)

type deployment = (int * int) list
(** Sorted (vertex, type index) pairs, duplicate-free. *)

val normalize : (int * int) list -> deployment

type flow_service = {
  flow_id : int;
  stages : (int * int) list;  (** (type index, serving vertex), chain order *)
  complete : bool;            (** whole chain traversed before dst *)
  consumption : float;
}

val allocate :
  spec -> Instance.t -> deployment -> flow_service list * float
(** Per-flow service detail and the total bandwidth (incomplete flows
    consume the rate reached so far on their remaining edges). *)

val feasible : spec -> Instance.t -> deployment -> bool

val single_flow : spec -> rate:int -> hops:int -> int list * float
(** Optimal chain positions for one flow with the given rate on a path
    of [hops] edges: returns the edge-offset position of each type (a
    non-decreasing list) and the resulting consumption.  Positions are
    offsets in [0 .. hops] from the source. *)

type report = {
  deployment : deployment;
  bandwidth : float;
  feasible : bool;
}

val greedy : k:int -> spec -> Instance.t -> report
(** Adaptive greedy over (vertex, type) pairs with covering fix-up,
    mirroring GTP. *)
