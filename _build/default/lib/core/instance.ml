module G = Tdmd_graph.Digraph
module Rt = Tdmd_tree.Rooted_tree
module Flow = Tdmd_flow.Flow

type t = {
  graph : G.t;
  flows : Flow.t array;
  lambda : float;
}

let make ~graph ~flows ~lambda =
  if lambda < 0.0 || lambda > 1.0 then
    invalid_arg "Instance.make: lambda must lie in [0, 1]";
  List.iter
    (fun f ->
      match Flow.validate graph f with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Instance.make: " ^ msg))
    flows;
  { graph; flows = Array.of_list flows; lambda }

let vertex_count t = G.vertex_count t.graph
let flow_count t = Array.length t.flows
let flows t = Array.to_list t.flows
let total_rate t = Flow.total_rate (flows t)
let total_path_volume t = Flow.total_path_volume (flows t)

module Tree = struct
  type general = t

  type t = {
    tree : Rt.t;
    flows : Flow.t array;
    lambda : float;
  }

  let make ~tree ~flows ~lambda =
    if lambda < 0.0 || lambda > 1.0 then
      invalid_arg "Instance.Tree.make: lambda must lie in [0, 1]";
    List.iter
      (fun f ->
        let src = Flow.src f in
        if not (Rt.is_leaf tree src) then
          invalid_arg "Instance.Tree.make: flow source is not a leaf";
        let expected = Rt.path_to_root tree src in
        let actual = Array.to_list f.Flow.path in
        if expected <> actual then
          invalid_arg "Instance.Tree.make: flow path is not the leaf-to-root path")
      flows;
    let merged = Flow.merge_same_source flows in
    { tree; flows = Array.of_list merged; lambda }

  let to_general t =
    let graph = Rt.to_digraph t.tree in
    { graph; flows = t.flows; lambda = t.lambda }

  let subtree_rate t =
    let n = Rt.size t.tree in
    let r = Array.make n 0 in
    Array.iter (fun f -> r.(Flow.src f) <- r.(Flow.src f) + f.Flow.rate) t.flows;
    List.iter
      (fun v ->
        let p = Rt.parent t.tree v in
        if p >= 0 then r.(p) <- r.(p) + r.(v))
      (Rt.postorder t.tree);
    r

  let source_rate t =
    let n = Rt.size t.tree in
    let r = Array.make n 0 in
    Array.iter (fun f -> r.(Flow.src f) <- r.(Flow.src f) + f.Flow.rate) t.flows;
    r
end
