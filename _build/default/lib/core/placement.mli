(** Deployment plans P (paper Eq. 2): the set of vertices carrying a
    middlebox.  Stored sorted and duplicate-free. *)

type t = private int list

val of_list : int list -> t
(** Sorts and deduplicates. *)

val empty : t
val size : t -> int
(** |P| — counts against the budget k (Eq. 3). *)

val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val to_list : t -> int list
val pp : Format.formatter -> t -> unit
