(** Fluid link-level network simulator.

    The paper computes bandwidth analytically (Eq. 1).  This substrate
    *routes* the flows instead: every flow pushes its rate onto each
    directed link of its path, middleboxes transform the rate in-place
    at their vertex, and per-link occupancy is accumulated.  Summing
    link loads must reproduce Eq. 1 exactly — the end-to-end validation
    the test suite performs on random instances — and the per-link view
    additionally checks the paper's over-provisioning assumption
    ("each link has enough bandwidth to hold all bypass flows") and
    yields utilisation statistics no closed form exposes. *)

type link_load = {
  src : int;
  dst : int;
  load : float;      (** total fluid rate crossing the link *)
  flows : int list;  (** ids of flows using the link *)
}

type result = {
  links : link_load list;       (** only links carrying traffic *)
  total_bandwidth : float;      (** Σ link loads = Eq. 1's b(P, F) *)
  max_link_load : float;
  served : (int * int) list;    (** (flow id, serving vertex) *)
  unserved : int list;
}

val route : Tdmd.Instance.t -> Tdmd.Placement.t -> result
(** Simulate all flows under the forced earliest-middlebox allocation. *)

val link_utilisations : result -> capacity:float -> (int * int * float) list
(** Per loaded link (src, dst, load/capacity), descending. *)

val congested : result -> capacity:float -> (int * int) list
(** Links whose load exceeds the capacity — empty under the paper's
    over-provisioning assumption. *)

val render : result -> string
(** Text summary: totals plus the five hottest links. *)
