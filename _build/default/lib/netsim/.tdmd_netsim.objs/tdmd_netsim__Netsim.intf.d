lib/netsim/netsim.mli: Tdmd
