lib/netsim/netsim.ml: Array Buffer Float Hashtbl List Printf Tdmd Tdmd_flow Tdmd_prelude
