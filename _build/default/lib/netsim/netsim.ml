module Flow = Tdmd_flow.Flow

type link_load = {
  src : int;
  dst : int;
  load : float;
  flows : int list;
}

type result = {
  links : link_load list;
  total_bandwidth : float;
  max_link_load : float;
  served : (int * int) list;
  unserved : int list;
}

let route instance placement =
  let lambda = instance.Tdmd.Instance.lambda in
  let loads : (int * int, float ref * int list ref) Hashtbl.t = Hashtbl.create 64 in
  let bump (u, v) amount id =
    let load, ids =
      match Hashtbl.find_opt loads (u, v) with
      | Some cell -> cell
      | None ->
        let cell = (ref 0.0, ref []) in
        Hashtbl.add loads (u, v) cell;
        cell
    in
    load := !load +. amount;
    ids := id :: !ids
  in
  let served = ref [] and unserved = ref [] in
  Array.iter
    (fun f ->
      let serving = Tdmd.Allocation.serve placement f in
      (match serving with
      | Tdmd.Allocation.Served_at { vertex; _ } ->
        served := (f.Flow.id, vertex) :: !served
      | Tdmd.Allocation.Unserved -> unserved := f.Flow.id :: !unserved);
      (* Walk the path pushing the current fluid rate onto each link;
         the middlebox transforms the rate when the flow passes it. *)
      let rate = ref (float_of_int f.Flow.rate) in
      let path = f.Flow.path in
      (match serving with
      | Tdmd.Allocation.Served_at { l = 0; _ } -> rate := lambda *. !rate
      | _ -> ());
      for i = 0 to Array.length path - 2 do
        bump (path.(i), path.(i + 1)) !rate f.Flow.id;
        (match serving with
        | Tdmd.Allocation.Served_at { l; _ } when l = i + 1 ->
          rate := lambda *. float_of_int f.Flow.rate
        | _ -> ())
      done)
    instance.Tdmd.Instance.flows;
  let links =
    Hashtbl.fold
      (fun (src, dst) (load, ids) acc ->
        { src; dst; load = !load; flows = List.sort compare !ids } :: acc)
      loads []
    |> List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst))
  in
  {
    links;
    total_bandwidth = List.fold_left (fun acc l -> acc +. l.load) 0.0 links;
    max_link_load = List.fold_left (fun acc l -> Float.max acc l.load) 0.0 links;
    served = List.rev !served;
    unserved = List.rev !unserved;
  }

let link_utilisations result ~capacity =
  assert (capacity > 0.0);
  List.map (fun l -> (l.src, l.dst, l.load /. capacity)) result.links
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let congested result ~capacity =
  List.filter_map
    (fun l -> if l.load > capacity then Some (l.src, l.dst) else None)
    result.links

let render result =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "total bandwidth: %g across %d loaded links (max %g)\n"
    result.total_bandwidth (List.length result.links) result.max_link_load;
  Printf.bprintf buf "served %d flows, unserved %d\n" (List.length result.served)
    (List.length result.unserved);
  let hottest =
    List.sort (fun a b -> compare b.load a.load) result.links
    |> Tdmd_prelude.Listx.take 5
  in
  List.iter
    (fun l ->
      Printf.bprintf buf "  %d -> %d: %g (%d flows)\n" l.src l.dst l.load
        (List.length l.flows))
    hottest;
  Buffer.contents buf
