lib/flow/flow.ml: Array Format Hashtbl List Printf Tdmd_graph
