lib/flow/flow.mli: Format Tdmd_graph
