(** Unsplittable flows with pre-determined paths (paper Sec. 3.1).

    A flow [f] has an integral initial rate [r_f] (the DP of Sec. 5.1 is
    pseudo-polynomial in the rates, so the model keeps them integral; use
    {!Tdmd.Scaled_dp} for fractional data) and an explicit vertex path
    [p_f] from [src_f] to [dst_f].  [l_v f] is the paper's l_v(f): the
    number of edges from the source to [v] along the path. *)

type t = private {
  id : int;
  rate : int;         (** initial traffic rate r_f > 0 *)
  path : int array;   (** vertex sequence, length >= 1 *)
}

val make : id:int -> rate:int -> path:int list -> t
(** @raise Invalid_argument on empty paths, non-positive rates, repeated
    vertices in the path, or consecutive duplicates. *)

val src : t -> int
val dst : t -> int
val hop_count : t -> int
(** |p_f|: number of edges. *)

val mem_vertex : t -> int -> bool
val l_v : t -> int -> int
(** [l_v f v] is the edge distance from [src f] to [v] along the path.
    @raise Not_found when [v] is not on the path. *)

val validate : Tdmd_graph.Digraph.t -> t -> (unit, string) result
(** Checks every consecutive pair is an arc of the graph. *)

val merge_same_source : t list -> t list
(** Paper Sec. 5 (proof of Thm. 5): flows sharing the same leaf source
    (and hence the same path to the root) are treated as one flow whose
    rate is the sum.  Merges flows with identical paths; ids are
    renumbered densely in first-appearance order. *)

val total_rate : t list -> int
val total_path_volume : t list -> int
(** Σ_f r_f · |p_f| — the unprocessed bandwidth consumption, i.e. the
    paper's max b(P) (Lemma 1). *)

val pp : Format.formatter -> t -> unit
