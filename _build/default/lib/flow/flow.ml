type t = {
  id : int;
  rate : int;
  path : int array;
}

let make ~id ~rate ~path =
  if rate <= 0 then invalid_arg "Flow.make: rate must be positive";
  if path = [] then invalid_arg "Flow.make: empty path";
  let arr = Array.of_list path in
  let seen = Hashtbl.create (Array.length arr) in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Flow.make: repeated vertex in path";
      Hashtbl.add seen v ())
    arr;
  { id; rate; path = arr }

let src f = f.path.(0)
let dst f = f.path.(Array.length f.path - 1)
let hop_count f = Array.length f.path - 1

let mem_vertex f v = Array.exists (fun u -> u = v) f.path

let l_v f v =
  let rec go i =
    if i = Array.length f.path then raise Not_found
    else if f.path.(i) = v then i
    else go (i + 1)
  in
  go 0

let validate g f =
  let rec check i =
    if i + 1 >= Array.length f.path then Ok ()
    else if Tdmd_graph.Digraph.mem_edge g f.path.(i) f.path.(i + 1) then check (i + 1)
    else
      Error
        (Printf.sprintf "flow %d: missing arc %d -> %d" f.id f.path.(i) f.path.(i + 1))
  in
  check 0

let merge_same_source flows =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun f ->
      let key = Array.to_list f.path in
      match Hashtbl.find_opt tbl key with
      | Some merged -> Hashtbl.replace tbl key { merged with rate = merged.rate + f.rate }
      | None ->
        Hashtbl.add tbl key f;
        order := key :: !order)
    flows;
  List.rev !order
  |> List.mapi (fun i key -> { (Hashtbl.find tbl key) with id = i })

let total_rate flows = List.fold_left (fun acc f -> acc + f.rate) 0 flows

let total_path_volume flows =
  List.fold_left (fun acc f -> acc + (f.rate * hop_count f)) 0 flows

let pp ppf f =
  Format.fprintf ppf "f%d[r=%d; %a]" f.id f.rate
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
       Format.pp_print_int)
    (Array.to_list f.path)
