(* Pins every worked number in the paper: Fig. 1 and Tab. 2 (general
   topology, GTP), Figs. 5-7 (tree DP tables), and the Sec. 5.2 HAT
   walkthrough.  These are the ground truth for our reading of the
   model's conventions (see lib/core/bandwidth.mli). *)

open Fixtures
module P = Tdmd.Placement
module B = Tdmd.Bandwidth

let feq = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fig. 1 and Tab. 2                                                   *)
(* ------------------------------------------------------------------ *)

let test_fig1_volume () =
  let inst = fig1_instance () in
  Alcotest.(check int) "total unprocessed volume" 16 (Tdmd.Instance.total_path_volume inst)

let test_fig1_two_boxes () =
  let inst = fig1_instance () in
  (* "The total bandwidth consumption of all flows is calculated as
     0.5*4*2 + 2*2 + 2 + 2 = 12" for P = {v5, v2}. *)
  feq "b({v5,v2})" 12.0 (B.total inst (P.of_list [ v5; v2 ]))

let test_fig1_three_boxes () =
  let inst = fig1_instance () in
  (* "the total flow bandwidth consumption is reduced to
     0.5*(4*2 + 2*2 + 2 + 2) = 8, which is the minimum" for boxes on
     every flow source {v5, v6, v4}. *)
  feq "b({v4,v5,v6})" 8.0 (B.total inst (P.of_list [ v4; v5; v6 ]));
  (* And it is indeed the minimum over all deployments of size 3. *)
  let brute = Tdmd.Brute.solve ~k:3 inst in
  feq "brute optimum k=3" 8.0 brute.Tdmd.Brute.bandwidth

let test_fig1_two_boxes_optimal () =
  let inst = fig1_instance () in
  let brute = Tdmd.Brute.solve ~k:2 inst in
  feq "brute optimum k=2" 12.0 brute.Tdmd.Brute.bandwidth

let test_table2_marginals () =
  let inst = fig1_instance () in
  let marg placed v = B.marginal inst (P.of_list placed) v in
  (* Row d_empty(v): 0 0 3 1 4 3. *)
  feq "d0(v1)" 0.0 (marg [] v1);
  feq "d0(v2)" 0.0 (marg [] v2);
  feq "d0(v3)" 3.0 (marg [] v3);
  feq "d0(v4)" 1.0 (marg [] v4);
  feq "d0(v5)" 4.0 (marg [] v5);
  feq "d0(v6)" 3.0 (marg [] v6);
  (* Row d_{v5}(v): 0 0 1 1 - 3. *)
  feq "d5(v1)" 0.0 (marg [ v5 ] v1);
  feq "d5(v2)" 0.0 (marg [ v5 ] v2);
  feq "d5(v3)" 1.0 (marg [ v5 ] v3);
  feq "d5(v4)" 1.0 (marg [ v5 ] v4);
  feq "d5(v6)" 3.0 (marg [ v5 ] v6);
  (* Row d_{v5,v6}(v): 0 0 0 1 - -. *)
  feq "d56(v1)" 0.0 (marg [ v5; v6 ] v1);
  feq "d56(v2)" 0.0 (marg [ v5; v6 ] v2);
  feq "d56(v3)" 0.0 (marg [ v5; v6 ] v3);
  feq "d56(v4)" 1.0 (marg [ v5; v6 ] v4)

let test_fig1_gtp_k3 () =
  let inst = fig1_instance () in
  (* GTP trace (Sec. 4.2): v5, then v6, then v4. *)
  let r = Tdmd.Gtp.run ~budget:3 inst in
  Alcotest.(check (list int)) "GTP k=3 deployment" [ v4; v5; v6 ]
    (P.to_list r.Tdmd.Gtp.placement);
  Alcotest.(check bool) "feasible" true r.Tdmd.Gtp.feasible;
  feq "bandwidth" 8.0 r.Tdmd.Gtp.bandwidth

let test_fig1_gtp_k2 () =
  let inst = fig1_instance () in
  (* With k = 2 the paper deploys {v5, v2} to stay feasible. *)
  let r = Tdmd.Gtp.run ~budget:2 inst in
  Alcotest.(check (list int)) "GTP k=2 deployment" [ v2; v5 ]
    (P.to_list r.Tdmd.Gtp.placement);
  Alcotest.(check bool) "feasible" true r.Tdmd.Gtp.feasible;
  feq "bandwidth" 12.0 r.Tdmd.Gtp.bandwidth

(* ------------------------------------------------------------------ *)
(* Figs. 5-7: DP tables                                                *)
(* ------------------------------------------------------------------ *)

(* Vertex ids in fig5: v1..v8 = 0..7. *)
let f_tables () = Tdmd.Dp.build ~k_max:4 (fig5_instance ())

let test_fig6_f_values () =
  let t = f_tables () in
  let f v k = Tdmd.Dp.f_value t ~v:(v - 1) ~k in
  (* Fig. 6 rows k = 1..4, columns v1..v8.  The v3 column below is
     corrected: the paper's figure prints v6's column twice, but its
     own worked text pins F(v3,2) = 6 (13.5 - 4.5 = 9 = F(v2,1) +
     F(v3,2) = 3 + 6), and F(v3,1) = 9 follows (single box at v6 is
     the only way to serve both right-subtree flows below the root). *)
  let expected =
    [
      (1, [ 24.0; 3.0; 9.0; 0.0; 0.0; 6.0; 0.0; 0.0 ]);
      (2, [ 16.5; 1.5; 6.0; 0.0; 0.0; 3.0; 0.0; 0.0 ]);
      (3, [ 13.5; 1.5; 6.0; 0.0; 0.0; 3.0; 0.0; 0.0 ]);
      (4, [ 12.0; 1.5; 6.0; 0.0; 0.0; 3.0; 0.0; 0.0 ]);
    ]
  in
  List.iter
    (fun (k, row) ->
      List.iteri
        (fun i expect ->
          feq (Printf.sprintf "F(v%d,%d)" (i + 1) k) expect (f (i + 1) k))
        row)
    expected

let test_fig7_p_v1 () =
  let t = f_tables () in
  let p k b = Tdmd.Dp.p_value t ~v:0 ~k ~b in
  (* Fig. 7(a) P(v1,k,b) — all finite entries except the k>=1, b=0
     column, whose paper values mix conventions (see EXPERIMENTS.md). *)
  feq "P(v1,0,0)" 24.0 (p 0 0);
  List.iter (fun b -> feq (Printf.sprintf "P(v1,0,%d)" b) infinity (p 0 b)) [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  feq "P(v1,1,1)" 22.5 (p 1 1);
  feq "P(v1,1,2)" 22.0 (p 1 2);
  feq "P(v1,1,3)" 22.5 (p 1 3);
  feq "P(v1,1,4)" infinity (p 1 4);
  feq "P(v1,1,5)" 16.5 (p 1 5);
  (* The paper's figure prints infinity at (1,6), but a single box on v6
     serves both right-subtree flows (exactly as (1,3)'s box on v2 does
     on the left, which the figure *does* score): 18 is the consistent
     value.  See EXPERIMENTS.md. *)
  feq "P(v1,1,6)" 18.0 (p 1 6);
  feq "P(v1,1,9)" 24.0 (p 1 9);
  feq "P(v1,2,2)" 21.5 (p 2 2);
  feq "P(v1,2,3)" 20.5 (p 2 3);
  feq "P(v1,2,4)" 21.0 (p 2 4);
  feq "P(v1,2,5)" 16.5 (p 2 5);
  feq "P(v1,2,6)" 15.0 (p 2 6);
  feq "P(v1,2,7)" 14.5 (p 2 7);
  feq "P(v1,2,8)" 15.0 (p 2 8);
  feq "P(v1,2,9)" 16.5 (p 2 9);
  feq "P(v1,3,4)" 19.5 (p 3 4);
  feq "P(v1,3,7)" 14.0 (p 3 7);
  feq "P(v1,3,8)" 13.0 (p 3 8);
  feq "P(v1,3,9)" 13.5 (p 3 9);
  feq "P(v1,4,9)" 12.0 (p 4 9)

let test_fig7_p_subtrees () =
  let t = f_tables () in
  (* Fig. 7(f) P(v6,k,b): subtree {v6,v7,v8}, flows r=5 (v7), r=1 (v8). *)
  let p6 k b = Tdmd.Dp.p_value t ~v:5 ~k ~b in
  feq "P(v6,0,0)" 6.0 (p6 0 0);
  feq "P(v6,1,1)" 5.5 (p6 1 1);
  feq "P(v6,1,5)" 3.5 (p6 1 5);
  feq "P(v6,1,6)" 6.0 (p6 1 6);
  feq "P(v6,2,6)" 3.0 (p6 2 6);
  (* Fig. 7(c) P(v3,k,b): subtree {v3,v6,v7,v8}. *)
  let p3 k b = Tdmd.Dp.p_value t ~v:2 ~k ~b in
  feq "P(v3,0,0)" 12.0 (p3 0 0);
  feq "P(v3,1,1)" 11.0 (p3 1 1);
  feq "P(v3,1,5)" 7.0 (p3 1 5);
  feq "P(v3,2,6)" 6.0 (p3 2 6);
  (* Fig. 7(d)/(g): leaves v4 and v7. *)
  let p4 k b = Tdmd.Dp.p_value t ~v:3 ~k ~b in
  feq "P(v4,0,0)" 0.0 (p4 0 0);
  feq "P(v4,0,2)" infinity (p4 0 2);
  feq "P(v4,1,2)" 0.0 (p4 1 2);
  let p7 k b = Tdmd.Dp.p_value t ~v:6 ~k ~b in
  feq "P(v7,0,5)" infinity (p7 0 5);
  feq "P(v7,1,5)" 0.0 (p7 1 5)

let test_fig5_dp_solutions () =
  let inst = fig5_instance () in
  (* Worked example: F(v1,3) = P(v1,3,9) = 13.5 with optimal deployment
     {v2, v7, v8}; k = 2 gives 16.5 via {v1,v7} or {v2,v6}; the text
     also derives P(v1,3,8) = 13 < P(v1,3,9). *)
  let r3 = Tdmd.Dp.solve ~k:3 inst in
  feq "DP k=3 value" 13.5 r3.Tdmd.Dp.bandwidth;
  Alcotest.(check (list int)) "DP k=3 deployment" [ 1; 6; 7 ]
    (P.to_list r3.Tdmd.Dp.placement);
  let r2 = Tdmd.Dp.solve ~k:2 inst in
  feq "DP k=2 value" 16.5 r2.Tdmd.Dp.bandwidth;
  let p2 = P.to_list r2.Tdmd.Dp.placement in
  Alcotest.(check bool) "DP k=2 deployment is {v1,v7} or {v2,v6}" true
    (p2 = [ 0; 6 ] || p2 = [ 1; 5 ]);
  let r4 = Tdmd.Dp.solve ~k:4 inst in
  feq "DP k=4 value" 12.0 r4.Tdmd.Dp.bandwidth;
  let r1 = Tdmd.Dp.solve ~k:1 inst in
  feq "DP k=1 value" 24.0 r1.Tdmd.Dp.bandwidth

(* ------------------------------------------------------------------ *)
(* Sec. 5.2: HAT walkthrough                                           *)
(* ------------------------------------------------------------------ *)

let test_hat_deltas () =
  let inst = fig5_instance () in
  let leaves = P.of_list [ 3; 4; 6; 7 ] in
  let d = Tdmd.Hat.delta_b inst leaves in
  (* "Δb(4,5) = 1.5, Δb(7,8) = 3 and Δb(4,7) = 9.5" (1-based names). *)
  feq "db(v4,v5)" 1.5 (d 3 4);
  feq "db(v7,v8)" 3.0 (d 6 7);
  feq "db(v4,v7)" 9.5 (d 3 6);
  (* Second round (P = {v2,v7,v8}): Δb(2,7)=9, Δb(2,8)=3, Δb(7,8)=3. *)
  let p2 = P.of_list [ 1; 6; 7 ] in
  let d2 = Tdmd.Hat.delta_b inst p2 in
  feq "db(v2,v7)" 9.0 (d2 1 6);
  feq "db(v2,v8)" 3.0 (d2 1 7);
  feq "db(v7,v8) round2" 3.0 (d2 6 7)

let test_hat_plans () =
  let inst = fig5_instance () in
  (* k >= 4: all leaves. *)
  let r4 = Tdmd.Hat.run ~k:4 inst in
  Alcotest.(check (list int)) "HAT k=4" [ 3; 4; 6; 7 ] (P.to_list r4.Tdmd.Hat.placement);
  (* k = 3: merge (v4,v5) -> v2: P = {v2, v7, v8}. *)
  let r3 = Tdmd.Hat.run ~k:3 inst in
  Alcotest.(check (list int)) "HAT k=3" [ 1; 6; 7 ] (P.to_list r3.Tdmd.Hat.placement);
  feq "HAT k=3 bandwidth" 13.5 r3.Tdmd.Hat.bandwidth;
  (* k = 2: tie between (v2,v8) and (v7,v8); our deterministic order
     merges (v2,v8) -> v1, giving {v1, v7} (one of the paper's two). *)
  let r2 = Tdmd.Hat.run ~k:2 inst in
  let p2 = P.to_list r2.Tdmd.Hat.placement in
  Alcotest.(check bool) "HAT k=2 is {v1,v7} or {v2,v6}" true
    (p2 = [ 0; 6 ] || p2 = [ 1; 5 ]);
  (* k = 1: {v1}. *)
  let r1 = Tdmd.Hat.run ~k:1 inst in
  Alcotest.(check (list int)) "HAT k=1" [ 0 ] (P.to_list r1.Tdmd.Hat.placement)

let test_lemma1 () =
  let inst = fig1_instance () in
  (* Lemma 1: d(empty) = 0; max d = (1-lambda) * sum r|p|. *)
  feq "d(empty)" 0.0 (B.decrement inst P.empty);
  feq "max decrement" 8.0 (B.max_decrement inst);
  feq "d(V)" 8.0 (B.decrement inst (P.of_list [ 0; 1; 2; 3; 4; 5 ]))

let suite =
  [
    Alcotest.test_case "fig1: total volume" `Quick test_fig1_volume;
    Alcotest.test_case "fig1: two boxes = 12" `Quick test_fig1_two_boxes;
    Alcotest.test_case "fig1: three boxes = 8 (optimal)" `Quick test_fig1_three_boxes;
    Alcotest.test_case "fig1: k=2 optimum = 12" `Quick test_fig1_two_boxes_optimal;
    Alcotest.test_case "table2: marginal decrements" `Quick test_table2_marginals;
    Alcotest.test_case "fig1: GTP k=3 trace" `Quick test_fig1_gtp_k3;
    Alcotest.test_case "fig1: GTP k=2 trace" `Quick test_fig1_gtp_k2;
    Alcotest.test_case "fig6: F(v,k) table" `Quick test_fig6_f_values;
    Alcotest.test_case "fig7: P(v1,k,b) table" `Quick test_fig7_p_v1;
    Alcotest.test_case "fig7: subtree P tables" `Quick test_fig7_p_subtrees;
    Alcotest.test_case "fig5: DP optimal deployments" `Quick test_fig5_dp_solutions;
    Alcotest.test_case "sec5.2: HAT delta values" `Quick test_hat_deltas;
    Alcotest.test_case "sec5.2: HAT plans k=1..4" `Quick test_hat_plans;
    Alcotest.test_case "lemma1: decrement bounds" `Quick test_lemma1;
  ]
