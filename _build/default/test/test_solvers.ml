(* Cross-checks between the solvers on random instances: the DP is
   certified optimal against brute force, the heuristics are bounded by
   the optimum, and GTP's submodular guarantee (Theorem 3) is verified
   against the brute-force maximum decrement at equal k. *)

open Tdmd_prelude
module P = Tdmd.Placement

let volume inst = float_of_int (Tdmd.Instance.total_path_volume inst)

(* ------------------------------------------------------------------ *)
(* DP vs brute force                                                   *)
(* ------------------------------------------------------------------ *)

let prop_dp_optimal =
  QCheck.Test.make ~name:"DP = brute force on random trees" ~count:60
    QCheck.(triple (int_bound 100000) (int_range 2 11) (int_range 1 4))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:4 ~lambda:0.5 in
      let dp = Tdmd.Dp.solve ~k inst in
      let brute = Tdmd.Brute.solve ~k (Tdmd.Instance.Tree.to_general inst) in
      (match (dp.Tdmd.Dp.feasible, brute.Tdmd.Brute.feasible) with
      | true, true -> Float.abs (dp.Tdmd.Dp.bandwidth -. brute.Tdmd.Brute.bandwidth) < 1e-6
      | a, b -> a = b))

let prop_dp_placement_consistent =
  QCheck.Test.make ~name:"DP traceback placement evaluates to the DP value"
    ~count:60
    QCheck.(triple (int_bound 100000) (int_range 2 14) (int_range 1 5))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:5 ~lambda:0.3 in
      let dp = Tdmd.Dp.solve ~k inst in
      (not dp.Tdmd.Dp.feasible)
      || begin
           let general = Tdmd.Instance.Tree.to_general inst in
           P.size dp.Tdmd.Dp.placement <= k
           && Tdmd.Feasibility.check general dp.Tdmd.Dp.placement
           && Float.abs
                (Tdmd.Bandwidth.total general dp.Tdmd.Dp.placement
                -. dp.Tdmd.Dp.bandwidth)
              < 1e-6
         end)

let prop_dp_monotone_in_k =
  QCheck.Test.make ~name:"DP value is non-increasing in k" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 3 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:4 ~lambda:0.6 in
      let values =
        List.map (fun k -> (Tdmd.Dp.solve ~k inst).Tdmd.Dp.bandwidth) [ 1; 2; 3; 4 ]
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a +. 1e-9 >= b && non_increasing rest
        | _ -> true
      in
      non_increasing values)

let test_dp_lambda_extremes () =
  let rng = Rng.create 41 in
  let inst0 = Fixtures.random_tree_instance rng ~n:10 ~max_rate:4 ~lambda:0.0 in
  (* lambda = 1: middleboxes change nothing; every placement costs the
     full volume. *)
  let tree = inst0.Tdmd.Instance.Tree.tree in
  let flows = Array.to_list inst0.Tdmd.Instance.Tree.flows in
  let inst1 = Tdmd.Instance.Tree.make ~tree ~flows ~lambda:1.0 in
  let dp1 = Tdmd.Dp.solve ~k:3 inst1 in
  Alcotest.(check (float 1e-9)) "lambda=1 keeps full volume"
    (volume (Tdmd.Instance.Tree.to_general inst1))
    dp1.Tdmd.Dp.bandwidth;
  (* lambda = 0 with a box on every leaf: zero bandwidth. *)
  let leaves =
    List.filter
      (fun v -> v <> Tdmd_tree.Rooted_tree.root tree)
      (Tdmd_tree.Rooted_tree.leaves tree)
  in
  let dp0 = Tdmd.Dp.solve ~k:(List.length leaves) inst0 in
  Alcotest.(check (float 1e-9)) "lambda=0, boxes at sources" 0.0 dp0.Tdmd.Dp.bandwidth

let test_dp_k0_infeasible () =
  let rng = Rng.create 42 in
  let inst = Fixtures.random_tree_instance rng ~n:8 ~max_rate:3 ~lambda:0.5 in
  let r = Tdmd.Dp.solve ~k:0 inst in
  Alcotest.(check bool) "k=0 infeasible" false r.Tdmd.Dp.feasible

let test_dp_single_vertex () =
  let tree = Tdmd_topo.Topo_tree.path 1 in
  let inst = Tdmd.Instance.Tree.make ~tree ~flows:[] ~lambda:0.5 in
  let r = Tdmd.Dp.solve ~k:1 inst in
  Alcotest.(check bool) "trivially feasible" true r.Tdmd.Dp.feasible;
  Alcotest.(check (float 0.0)) "zero bandwidth" 0.0 r.Tdmd.Dp.bandwidth

(* ------------------------------------------------------------------ *)
(* HAT and GTP against the optimum                                     *)
(* ------------------------------------------------------------------ *)

let prop_hat_bounded_by_dp =
  QCheck.Test.make ~name:"DP <= HAT <= unprocessed volume" ~count:60
    QCheck.(triple (int_bound 100000) (int_range 2 14) (int_range 1 6))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:5 ~lambda:0.5 in
      let dp = Tdmd.Dp.solve ~k inst in
      let hat = Tdmd.Hat.run ~k inst in
      hat.Tdmd.Hat.feasible
      && P.size hat.Tdmd.Hat.placement <= max k 1
      && dp.Tdmd.Dp.bandwidth <= hat.Tdmd.Hat.bandwidth +. 1e-6
      && hat.Tdmd.Hat.bandwidth
         <= volume (Tdmd.Instance.Tree.to_general inst) +. 1e-6)

let prop_gtp_bounded_by_dp_on_trees =
  QCheck.Test.make ~name:"DP <= GTP on trees; GTP feasible" ~count:60
    QCheck.(triple (int_bound 100000) (int_range 2 12) (int_range 1 5))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:4 ~lambda:0.5 in
      let general = Tdmd.Instance.Tree.to_general inst in
      let dp = Tdmd.Dp.solve ~k inst in
      let gtp = Tdmd.Gtp.run ~budget:k general in
      (* k >= 1 on a rooted tree is always feasible (box at the root). *)
      gtp.Tdmd.Gtp.feasible
      && dp.Tdmd.Dp.bandwidth <= gtp.Tdmd.Gtp.bandwidth +. 1e-6)

let prop_gtp_approximation_ratio =
  QCheck.Test.make
    ~name:"theorem 3: GTP decrement >= (1 - 1/e) * optimal decrement" ~count:40
    QCheck.(triple (int_bound 100000) (int_range 3 10) (int_range 1 3))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_general_instance rng ~n ~flows:n ~max_rate:4 ~lambda:0.5 in
      (* Theorem 3 is about the pure greedy prefix (no feasibility
         fix-up): run the submodular greedy directly on the decrement
         oracle and compare against the exact k-constrained maximum. *)
      let oracle = Tdmd.Bandwidth.oracle inst in
      let greedy = Tdmd_submod.Submodular.greedy ~k oracle in
      let greedy_decrement =
        Tdmd.Bandwidth.decrement inst (P.of_list greedy.Tdmd_submod.Submodular.chosen)
      in
      let best = ref 0.0 in
      let rec enum start chosen size =
        let d = Tdmd.Bandwidth.decrement inst (P.of_list chosen) in
        if d > !best then best := d;
        if size < k then
          for v = start to n - 1 do
            enum (v + 1) (v :: chosen) (size + 1)
          done
      in
      enum 0 [] 0;
      greedy_decrement >= ((1.0 -. exp (-1.0)) *. !best) -. 1e-6)

let prop_celf_gtp_equal =
  QCheck.Test.make ~name:"GTP and CELF-GTP produce identical deployments" ~count:40
    QCheck.(triple (int_bound 100000) (int_range 3 12) (int_range 1 5))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_general_instance rng ~n ~flows:(2 * n) ~max_rate:5 ~lambda:0.4 in
      let a = Tdmd.Gtp.run ~budget:k inst in
      let b = Tdmd.Gtp.run_celf ~budget:k inst in
      (* The oracle is integer-valued, so the two greedy variants agree
         exactly, not just within float noise. *)
      P.to_list a.Tdmd.Gtp.placement = P.to_list b.Tdmd.Gtp.placement
      && b.Tdmd.Gtp.oracle_calls <= a.Tdmd.Gtp.oracle_calls + n)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let prop_baselines_sandwiched =
  QCheck.Test.make ~name:"baselines lie between optimum and unprocessed volume"
    ~count:40
    QCheck.(triple (int_bound 100000) (int_range 2 11) (int_range 1 4))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:4 ~lambda:0.5 in
      let general = Tdmd.Instance.Tree.to_general inst in
      let opt = (Tdmd.Dp.solve ~k inst).Tdmd.Dp.bandwidth in
      let rand = Tdmd.Baselines.random rng ~k general in
      let be = Tdmd.Baselines.best_effort ~k general in
      let vol = volume general in
      (* Infeasible plans may undercut the feasible optimum (they skip
         serving some flows), so the lower bound only applies to
         feasible ones; the volume upper bound is universal. *)
      let sandwiched (r : Tdmd.Baselines.report) =
        r.Tdmd.Baselines.bandwidth <= vol +. 1e-6
        && ((not r.Tdmd.Baselines.feasible)
           || opt <= r.Tdmd.Baselines.bandwidth +. 1e-6)
      in
      sandwiched rand && sandwiched be)

let test_random_respects_k () =
  let rng = Rng.create 43 in
  let inst = Fixtures.fig1_instance () in
  for k = 2 to 5 do
    let r = Tdmd.Baselines.random rng ~k inst in
    Alcotest.(check bool) "size <= k" true (P.size r.Tdmd.Baselines.placement <= k)
  done

let test_best_effort_deterministic () =
  let inst = Fixtures.fig1_instance () in
  let a = Tdmd.Baselines.best_effort ~k:3 inst in
  let b = Tdmd.Baselines.best_effort ~k:3 inst in
  Alcotest.(check (list int)) "same plan"
    (P.to_list a.Tdmd.Baselines.placement)
    (P.to_list b.Tdmd.Baselines.placement)

let test_gtp_beats_best_effort_eventually () =
  (* On Fig. 1 with k = 3 the adaptive greedy reaches the optimum 8;
     non-adaptive best-effort ranks by singleton decrement
     (v5:4, v3:3, v6:3) and lands on a worse plan. *)
  let inst = Fixtures.fig1_instance () in
  let gtp = Tdmd.Gtp.run ~budget:3 inst in
  let be = Tdmd.Baselines.best_effort ~k:3 inst in
  Alcotest.(check bool) "gtp <= best-effort" true
    (gtp.Tdmd.Gtp.bandwidth <= be.Tdmd.Baselines.bandwidth +. 1e-9)

(* GTP's derived k (Alg. 1 run to feasibility) is sandwiched between
   the exact minimum cover and the ln(n)-greedy bound. *)
let prop_derived_k_bounds =
  QCheck.Test.make ~name:"derived k between exact minimum and greedy cover"
    ~count:30
    QCheck.(pair (int_bound 100000) (int_range 3 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_general_instance rng ~n ~flows:n ~max_rate:4 ~lambda:0.5 in
      let dk = Tdmd.Gtp.derived_k inst in
      let exact = Tdmd.Feasibility.min_middleboxes inst in
      let greedy_size =
        match Tdmd.Feasibility.greedy_cover inst with
        | Some c -> P.size c
        | None -> max_int
      in
      (* Alg. 1 favours decrement over coverage, so it can use more
         boxes than the pure covering greedy, but never fewer than the
         exact minimum and never more than the vertex count. *)
      exact <= dk && dk <= n && exact <= greedy_size
      && Tdmd.Feasibility.check inst
           (Tdmd.Gtp.run ~budget:dk inst).Tdmd.Gtp.placement)

(* HAT performs exactly |initial leaves| - |final placement| merges. *)
let prop_hat_merge_count =
  QCheck.Test.make ~name:"HAT merge count brackets the placement shrinkage" ~count:40
    QCheck.(triple (int_bound 100000) (int_range 2 16) (int_range 1 8))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:4 ~lambda:0.5 in
      let tree = inst.Tdmd.Instance.Tree.tree in
      let leaves = List.length (Tdmd_tree.Rooted_tree.leaves tree) in
      let r = Tdmd.Hat.run ~k inst in
      let dropped = leaves - P.size r.Tdmd.Hat.placement in
      (* Each merge removes two boxes and adds their LCA, which may
         itself already be deployed: the placement shrinks by one or
         two per merge. *)
      r.Tdmd.Hat.merges <= dropped
      && dropped <= 2 * r.Tdmd.Hat.merges
      && P.size r.Tdmd.Hat.placement <= max k 1)

(* ------------------------------------------------------------------ *)
(* Extensions                                                          *)
(* ------------------------------------------------------------------ *)

let prop_scaled_dp_theta1_is_dp =
  QCheck.Test.make ~name:"scaled DP with theta=1 equals DP" ~count:30
    QCheck.(triple (int_bound 100000) (int_range 2 10) (int_range 1 4))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:5 ~lambda:0.5 in
      let dp = Tdmd.Dp.solve ~k inst in
      let sc = Tdmd.Scaled_dp.solve ~k ~theta:1 inst in
      Float.abs (dp.Tdmd.Dp.bandwidth -. sc.Tdmd.Scaled_dp.bandwidth) < 1e-6)

let prop_scaled_dp_bounded =
  QCheck.Test.make ~name:"scaled DP is optimal-bounded and shrinks states"
    ~count:30
    QCheck.(pair (int_bound 100000) (int_range 3 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:12 ~lambda:0.5 in
      let dp = Tdmd.Dp.solve ~k:3 inst in
      let sc = Tdmd.Scaled_dp.solve ~k:3 ~theta:4 inst in
      sc.Tdmd.Scaled_dp.bandwidth +. 1e-6 >= dp.Tdmd.Dp.bandwidth
      && sc.Tdmd.Scaled_dp.scaled_states <= dp.Tdmd.Dp.states)

let test_capacitated_unlimited_matches_plain () =
  let inst = Fixtures.fig1_instance () in
  (* With capacity far above the total rate the capacitated greedy can
     reach the plain optimum-quality region. *)
  let cap = Tdmd.Capacitated.greedy ~k:3 ~capacity:1000 inst in
  Alcotest.(check bool) "feasible" true cap.Tdmd.Capacitated.feasible;
  Alcotest.(check (float 1e-9)) "reaches optimum" 8.0 cap.Tdmd.Capacitated.bandwidth

let test_capacitated_tight_capacity () =
  let inst = Fixtures.fig1_instance () in
  (* Capacity 4 forces f1 (rate 4) to its own box. *)
  let a = Tdmd.Capacitated.allocate inst ~capacity:4 (P.of_list [ 1; 4 ]) in
  Alcotest.(check int) "one flow unserved under tight capacity" 1
    (List.length a.Tdmd.Capacitated.unserved);
  let wide = Tdmd.Capacitated.allocate inst ~capacity:6 (P.of_list [ 1; 4 ]) in
  Alcotest.(check int) "looser capacity serves all" 0
    (List.length wide.Tdmd.Capacitated.unserved)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dp_optimal;
    QCheck_alcotest.to_alcotest prop_dp_placement_consistent;
    QCheck_alcotest.to_alcotest prop_dp_monotone_in_k;
    Alcotest.test_case "dp: lambda extremes" `Quick test_dp_lambda_extremes;
    Alcotest.test_case "dp: k=0 infeasible" `Quick test_dp_k0_infeasible;
    Alcotest.test_case "dp: single-vertex tree" `Quick test_dp_single_vertex;
    QCheck_alcotest.to_alcotest prop_hat_bounded_by_dp;
    QCheck_alcotest.to_alcotest prop_gtp_bounded_by_dp_on_trees;
    QCheck_alcotest.to_alcotest prop_gtp_approximation_ratio;
    QCheck_alcotest.to_alcotest prop_celf_gtp_equal;
    QCheck_alcotest.to_alcotest prop_derived_k_bounds;
    QCheck_alcotest.to_alcotest prop_hat_merge_count;
    QCheck_alcotest.to_alcotest prop_baselines_sandwiched;
    Alcotest.test_case "random baseline: respects k" `Quick test_random_respects_k;
    Alcotest.test_case "best-effort: deterministic" `Quick
      test_best_effort_deterministic;
    Alcotest.test_case "gtp beats best-effort on fig1" `Quick
      test_gtp_beats_best_effort_eventually;
    QCheck_alcotest.to_alcotest prop_scaled_dp_theta1_is_dp;
    QCheck_alcotest.to_alcotest prop_scaled_dp_bounded;
    Alcotest.test_case "capacitated: unlimited = plain" `Quick
      test_capacitated_unlimited_matches_plain;
    Alcotest.test_case "capacitated: tight capacity" `Quick
      test_capacitated_tight_capacity;
  ]
