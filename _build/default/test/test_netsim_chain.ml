(* The fluid link simulator (cross-validating Eq. 1 end to end), the
   service-chain extension, the SVG renderer, and the gravity-model
   workload. *)

open Tdmd_prelude
module P = Tdmd.Placement
module Flow = Tdmd_flow.Flow
module Ns = Tdmd_netsim.Netsim

(* ------------------------------------------------------------------ *)
(* Netsim                                                              *)
(* ------------------------------------------------------------------ *)

let test_netsim_fig1 () =
  let inst = Fixtures.fig1_instance () in
  let r = Ns.route inst (P.of_list [ Fixtures.v5; Fixtures.v2 ]) in
  (* Routed link loads must sum to the paper's 12. *)
  Alcotest.(check (float 1e-9)) "total = Eq.1" 12.0 r.Ns.total_bandwidth;
  Alcotest.(check int) "all served" 0 (List.length r.Ns.unserved);
  (* f1 halved from its source: both its links carry 2. *)
  let load u v =
    let l = List.find (fun l -> l.Ns.src = u && l.Ns.dst = v) r.Ns.links in
    l.Ns.load
  in
  Alcotest.(check (float 1e-9)) "v5->v3 diminished" 2.0 (load Fixtures.v5 Fixtures.v3);
  Alcotest.(check (float 1e-9)) "v3->v1 diminished" 2.0 (load Fixtures.v3 Fixtures.v1);
  (* f2 unprocessed until its destination v2: full rate on both links. *)
  Alcotest.(check (float 1e-9)) "v6->v3 full (f2)" 2.0 (load Fixtures.v6 Fixtures.v3);
  (* v3->v2 carries f2 at full rate. *)
  Alcotest.(check (float 1e-9)) "v3->v2 full" 2.0 (load Fixtures.v3 Fixtures.v2)

let test_netsim_unserved () =
  let inst = Fixtures.fig1_instance () in
  let r = Ns.route inst (P.of_list [ Fixtures.v5 ]) in
  Alcotest.(check int) "three unserved" 3 (List.length r.Ns.unserved);
  Alcotest.(check (float 1e-9)) "matches analytic total"
    (Tdmd.Bandwidth.total inst (P.of_list [ Fixtures.v5 ]))
    r.Ns.total_bandwidth

let test_netsim_utilisation () =
  let inst = Fixtures.fig1_instance () in
  let r = Ns.route inst P.empty in
  Alcotest.(check (float 1e-9)) "unprocessed total" 16.0 r.Ns.total_bandwidth;
  let utils = Ns.link_utilisations r ~capacity:4.0 in
  (match utils with
  | (_, _, top) :: _ -> Alcotest.(check (float 1e-9)) "hottest = 4/4" 1.0 top
  | [] -> Alcotest.fail "expected loads");
  Alcotest.(check (list (pair int int))) "nothing congested at cap 4" []
    (Ns.congested r ~capacity:4.0);
  Alcotest.(check bool) "congested at cap 3" true (Ns.congested r ~capacity:3.0 <> []);
  Alcotest.(check bool) "render non-empty" true (String.length (Ns.render r) > 0)

(* The crucial property: routing and Eq. 1 agree on any instance and
   placement. *)
let prop_netsim_matches_analytic =
  QCheck.Test.make ~name:"netsim link loads sum to the analytic objective"
    ~count:80
    QCheck.(pair (int_bound 100000) (int_range 3 15))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:(2 * n) ~max_rate:6
          ~lambda:(Rng.float rng 1.0)
      in
      let p =
        P.of_list (Rng.sample_without_replacement rng n (Rng.int rng n))
      in
      let r = Ns.route inst p in
      Float.abs (r.Ns.total_bandwidth -. Tdmd.Bandwidth.total inst p) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Chain                                                               *)
(* ------------------------------------------------------------------ *)

let test_chain_spec () =
  Alcotest.check_raises "empty" (Invalid_argument "Chain.make_spec: empty chain")
    (fun () -> ignore (Tdmd.Chain.make_spec []));
  Alcotest.check_raises "negative"
    (Invalid_argument "Chain.make_spec: negative ratio") (fun () ->
      ignore (Tdmd.Chain.make_spec [ 0.5; -1.0 ]))

let test_chain_single_type_matches_tdmd () =
  (* A one-type chain is exactly the TDMD model. *)
  let inst = Fixtures.fig1_instance () in
  let spec = Tdmd.Chain.make_spec [ 0.5 ] in
  let deployment = [ (Fixtures.v5, 0); (Fixtures.v2, 0) ] in
  let _, bw = Tdmd.Chain.allocate spec inst deployment in
  Alcotest.(check (float 1e-9)) "fig1 two boxes" 12.0 bw;
  Alcotest.(check bool) "feasible" true (Tdmd.Chain.feasible spec inst deployment);
  Alcotest.(check bool) "infeasible without cover" false
    (Tdmd.Chain.feasible spec inst [ (Fixtures.v5, 0) ])

let test_chain_order_enforced () =
  (* Two types; type 1's instance before type 0's on the path is
     useless. *)
  let g = Tdmd_graph.Digraph.create 4 in
  List.iter (fun (a, b) -> Tdmd_graph.Digraph.add_undirected g a b)
    [ (3, 2); (2, 1); (1, 0) ];
  let f = Flow.make ~id:0 ~rate:2 ~path:[ 3; 2; 1; 0 ] in
  let inst = Tdmd.Instance.make ~graph:g ~flows:[ f ] ~lambda:0.5 in
  let spec = Tdmd.Chain.make_spec [ 0.5; 0.5 ] in
  (* t1 at v3 (source) cannot fire before t0 at v1. *)
  let services, _ = Tdmd.Chain.allocate spec inst [ (3, 1); (1, 0) ] in
  (match services with
  | [ s ] ->
    Alcotest.(check bool) "incomplete" false s.Tdmd.Chain.complete;
    Alcotest.(check (list (pair int int))) "only stage 0 fired" [ (0, 1) ]
      s.Tdmd.Chain.stages
  | _ -> Alcotest.fail "one flow expected");
  (* Correct order completes, both stages co-located allowed too. *)
  let services, bw = Tdmd.Chain.allocate spec inst [ (3, 0); (3, 1) ] in
  (match services with
  | [ s ] ->
    Alcotest.(check bool) "complete" true s.Tdmd.Chain.complete;
    (* Both at source: all 3 edges at rate 2*0.25 = 0.5. *)
    Alcotest.(check (float 1e-9)) "quartered" 1.5 s.Tdmd.Chain.consumption
  | _ -> Alcotest.fail "one flow expected");
  Alcotest.(check (float 1e-9)) "total" 1.5 bw

let brute_single_flow spec ~rate ~hops =
  (* Enumerate all non-decreasing position tuples. *)
  let m = Array.length spec.Tdmd.Chain.ratios in
  let best = ref infinity in
  let rec go i lo acc =
    if i = m then begin
      (* Evaluate: edge e in [0, hops): rate * prod of ratios of stages
         placed at positions <= e. *)
      let positions = List.rev acc in
      let cost = ref 0.0 in
      for e = 0 to hops - 1 do
        let stages_before =
          List.length (List.filter (fun q -> q <= e) positions)
        in
        let ratio = ref 1.0 in
        for j = 0 to stages_before - 1 do
          ratio := !ratio *. spec.Tdmd.Chain.ratios.(j)
        done;
        cost := !cost +. (float_of_int rate *. !ratio)
      done;
      if !cost < !best then best := !cost
    end
    else
      for q = lo to hops do
        go (i + 1) q (q :: acc)
      done
  in
  go 0 0 [];
  !best

let prop_chain_single_flow_optimal =
  QCheck.Test.make ~name:"single-flow chain DP = brute-force enumeration"
    ~count:100
    QCheck.(triple (int_bound 100000) (int_range 1 4) (int_range 1 8))
    (fun (seed, m, hops) ->
      let rng = Rng.create seed in
      let ratios = List.init m (fun _ -> Rng.float rng 2.0) in
      let spec = Tdmd.Chain.make_spec ratios in
      let rate = Rng.int_in rng 1 9 in
      let positions, value = Tdmd.Chain.single_flow spec ~rate ~hops in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      List.length positions = m
      && non_decreasing positions
      && Float.abs (value -. brute_single_flow spec ~rate ~hops) < 1e-9)

let test_chain_single_flow_positions () =
  (* Diminishing chain: every stage belongs at the source. *)
  let spec = Tdmd.Chain.make_spec [ 0.5; 0.8 ] in
  let positions, value = Tdmd.Chain.single_flow spec ~rate:10 ~hops:3 in
  Alcotest.(check (list int)) "all at source" [ 0; 0 ] positions;
  Alcotest.(check (float 1e-9)) "value" 12.0 value;
  (* Inflating chain: stages belong at the destination. *)
  let spec = Tdmd.Chain.make_spec [ 2.0 ] in
  let positions, value = Tdmd.Chain.single_flow spec ~rate:1 ~hops:4 in
  Alcotest.(check (list int)) "at destination" [ 4 ] positions;
  Alcotest.(check (float 1e-9)) "uninflated" 4.0 value

let test_chain_greedy () =
  let inst = Fixtures.fig1_instance () in
  let spec = Tdmd.Chain.make_spec [ 0.5 ] in
  let r = Tdmd.Chain.greedy ~k:3 spec inst in
  Alcotest.(check bool) "feasible" true r.Tdmd.Chain.feasible;
  (* One-type chain greedy must match the TDMD optimum here. *)
  Alcotest.(check (float 1e-9)) "matches fig1 k=3 optimum" 8.0 r.Tdmd.Chain.bandwidth;
  (* Two-type chain: budget must cover both types. *)
  let spec2 = Tdmd.Chain.make_spec [ 0.5; 0.0 ] in
  let r2 = Tdmd.Chain.greedy ~k:4 spec2 inst in
  Alcotest.(check bool) "within budget" true
    (List.length r2.Tdmd.Chain.deployment <= 4)

(* ------------------------------------------------------------------ *)
(* SVG + gravity workload                                              *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_svg_graph () =
  let inst = Fixtures.fig1_instance () in
  let svg =
    Tdmd_topo.Svg_render.graph ~highlight:[ 0 ] ~boxes:[ 4 ]
      inst.Tdmd.Instance.graph
  in
  Alcotest.(check bool) "svg doc" true (contains svg "<svg");
  Alcotest.(check bool) "has box square" true (contains svg "<rect x=");
  Alcotest.(check bool) "has circles" true (contains svg "<circle");
  Alcotest.(check bool) "closes" true (contains svg "</svg>")

let test_svg_tree () =
  let svg = Tdmd_topo.Svg_render.tree ~boxes:[ 1 ] (Fixtures.fig5_tree ()) in
  Alcotest.(check bool) "svg doc" true (contains svg "<svg");
  Alcotest.(check bool) "8 labels" true (contains svg ">7</text>")

let test_gravity_flows () =
  let rng = Rng.create 63 in
  let ark = Tdmd_topo.Ark.generate rng ~n:40 in
  let g = ark.Tdmd_topo.Ark.graph in
  let dests = ark.Tdmd_topo.Ark.hubs in
  let flows =
    Tdmd_traffic.Workload.gravity_flows rng g ~dests
      ~rates:(Tdmd_traffic.Rate_dist.Constant 2) ~density:0.4 ~link_capacity:30 ()
  in
  Alcotest.(check bool) "flows exist" true (flows <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "valid" true (Flow.validate g f = Ok ());
      Alcotest.(check bool) "to hub" true (List.mem (Flow.dst f) dests))
    flows;
  (* Hub-adjacent sources should be over-represented vs uniform: check
     that the mean degree of sources exceeds the graph's mean degree. *)
  let degree v =
    List.length
      (List.sort_uniq compare
         (Tdmd_graph.Digraph.succ g v @ Tdmd_graph.Digraph.pred g v))
  in
  let n = Tdmd_graph.Digraph.vertex_count g in
  let mean_deg =
    float_of_int (List.fold_left (fun acc v -> acc + degree v) 0 (Listx.range 0 (n - 1)))
    /. float_of_int n
  in
  let src_deg =
    Listx.sum_by (fun f -> float_of_int (degree (Flow.src f))) flows
    /. float_of_int (List.length flows)
  in
  Alcotest.(check bool)
    (Printf.sprintf "degree-biased sources (%.2f > %.2f)" src_deg mean_deg)
    true (src_deg > mean_deg)

let suite =
  [
    Alcotest.test_case "netsim: fig1 link loads" `Quick test_netsim_fig1;
    Alcotest.test_case "netsim: unserved flows" `Quick test_netsim_unserved;
    Alcotest.test_case "netsim: utilisation + congestion" `Quick
      test_netsim_utilisation;
    QCheck_alcotest.to_alcotest prop_netsim_matches_analytic;
    Alcotest.test_case "chain: spec validation" `Quick test_chain_spec;
    Alcotest.test_case "chain: one type = TDMD" `Quick
      test_chain_single_type_matches_tdmd;
    Alcotest.test_case "chain: order enforced" `Quick test_chain_order_enforced;
    QCheck_alcotest.to_alcotest prop_chain_single_flow_optimal;
    Alcotest.test_case "chain: single-flow positions" `Quick
      test_chain_single_flow_positions;
    Alcotest.test_case "chain: greedy" `Quick test_chain_greedy;
    Alcotest.test_case "svg: general graph" `Quick test_svg_graph;
    Alcotest.test_case "svg: tree" `Quick test_svg_tree;
    Alcotest.test_case "traffic: gravity model" `Quick test_gravity_flows;
  ]
