module Flow = Tdmd_flow.Flow
module G = Tdmd_graph.Digraph

let test_make_and_accessors () =
  let f = Flow.make ~id:7 ~rate:3 ~path:[ 4; 2; 0 ] in
  Alcotest.(check int) "src" 4 (Flow.src f);
  Alcotest.(check int) "dst" 0 (Flow.dst f);
  Alcotest.(check int) "hops" 2 (Flow.hop_count f);
  Alcotest.(check bool) "mem" true (Flow.mem_vertex f 2);
  Alcotest.(check bool) "not mem" false (Flow.mem_vertex f 9);
  Alcotest.(check int) "l_v src" 0 (Flow.l_v f 4);
  Alcotest.(check int) "l_v mid" 1 (Flow.l_v f 2);
  Alcotest.(check int) "l_v dst" 2 (Flow.l_v f 0);
  Alcotest.check_raises "l_v off-path" Not_found (fun () -> ignore (Flow.l_v f 9))

let test_make_rejects () =
  Alcotest.check_raises "empty path" (Invalid_argument "Flow.make: empty path")
    (fun () -> ignore (Flow.make ~id:0 ~rate:1 ~path:[]));
  Alcotest.check_raises "zero rate" (Invalid_argument "Flow.make: rate must be positive")
    (fun () -> ignore (Flow.make ~id:0 ~rate:0 ~path:[ 1 ]));
  Alcotest.check_raises "loop in path"
    (Invalid_argument "Flow.make: repeated vertex in path") (fun () ->
      ignore (Flow.make ~id:0 ~rate:1 ~path:[ 1; 2; 1 ]))

let test_validate () =
  let g = G.create 3 in
  G.add_edge g 0 1;
  let ok = Flow.make ~id:0 ~rate:1 ~path:[ 0; 1 ] in
  let bad = Flow.make ~id:1 ~rate:1 ~path:[ 1; 2 ] in
  Alcotest.(check bool) "valid" true (Flow.validate g ok = Ok ());
  (match Flow.validate g bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected missing-arc error")

let test_merge_same_source () =
  let f path rate id = Flow.make ~id ~rate ~path in
  let flows = [ f [ 1; 0 ] 2 0; f [ 2; 0 ] 3 1; f [ 1; 0 ] 5 2 ] in
  let merged = Flow.merge_same_source flows in
  Alcotest.(check int) "two groups" 2 (List.length merged);
  (match merged with
  | [ a; b ] ->
    Alcotest.(check int) "first keeps order" 1 (Flow.src a);
    Alcotest.(check int) "rates summed" 7 a.Flow.rate;
    Alcotest.(check int) "other untouched" 3 b.Flow.rate;
    Alcotest.(check int) "ids renumbered" 0 a.Flow.id;
    Alcotest.(check int) "ids renumbered" 1 b.Flow.id
  | _ -> Alcotest.fail "expected two flows");
  Alcotest.(check int) "total rate preserved" 10 (Flow.total_rate merged)

let test_volume () =
  let flows =
    [ Flow.make ~id:0 ~rate:4 ~path:[ 0; 1; 2 ]; Flow.make ~id:1 ~rate:2 ~path:[ 3; 2 ] ]
  in
  Alcotest.(check int) "total rate" 6 (Flow.total_rate flows);
  Alcotest.(check int) "volume = sum r*|p|" 10 (Flow.total_path_volume flows)

let test_single_vertex_path () =
  (* Degenerate src = dst flow: legal (hop count 0, zero volume); used
     by the set-cover reduction. *)
  let f = Flow.make ~id:0 ~rate:2 ~path:[ 5 ] in
  Alcotest.(check int) "hops" 0 (Flow.hop_count f);
  Alcotest.(check int) "volume" 0 (Flow.total_path_volume [ f ])

let prop_merge_preserves_volume =
  QCheck.Test.make ~name:"merge_same_source preserves rate and volume" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_range 1 9) (int_range 0 4)))
    (fun specs ->
      let flows =
        List.mapi
          (fun id (rate, src) ->
            (* Five possible sources, all flowing down a fixed chain. *)
            let path = List.init (src + 2) (fun i -> src + i) in
            Flow.make ~id ~rate ~path)
          specs
      in
      let merged = Flow.merge_same_source flows in
      Flow.total_rate merged = Flow.total_rate flows
      && Flow.total_path_volume merged = Flow.total_path_volume flows
      && List.length (List.sort_uniq compare (List.map (fun f -> f.Flow.id) merged))
         = List.length merged)

let suite =
  [
    Alcotest.test_case "flow: accessors" `Quick test_make_and_accessors;
    Alcotest.test_case "flow: rejects" `Quick test_make_rejects;
    Alcotest.test_case "flow: path validation" `Quick test_validate;
    Alcotest.test_case "flow: merge same source" `Quick test_merge_same_source;
    Alcotest.test_case "flow: totals" `Quick test_volume;
    Alcotest.test_case "flow: single-vertex path" `Quick test_single_vertex_path;
    QCheck_alcotest.to_alcotest prop_merge_preserves_volume;
  ]
