(* Model-layer invariants: instances, placements, allocation and the
   bandwidth objective (paper Sec. 3). *)

open Tdmd_prelude
module P = Tdmd.Placement
module A = Tdmd.Allocation
module B = Tdmd.Bandwidth
module Flow = Tdmd_flow.Flow

let test_placement_ops () =
  let p = P.of_list [ 3; 1; 3; 2 ] in
  Alcotest.(check (list int)) "sorted dedup" [ 1; 2; 3 ] (P.to_list p);
  Alcotest.(check int) "size" 3 (P.size p);
  Alcotest.(check bool) "mem" true (P.mem p 2);
  Alcotest.(check (list int)) "add" [ 0; 1; 2; 3 ] (P.to_list (P.add p 0));
  Alcotest.(check (list int)) "add existing" [ 1; 2; 3 ] (P.to_list (P.add p 2));
  Alcotest.(check (list int)) "remove" [ 1; 3 ] (P.to_list (P.remove p 2));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 9 ]
    (P.to_list (P.union p (P.of_list [ 9; 1 ])));
  Alcotest.(check int) "empty" 0 (P.size P.empty)

let test_instance_validation () =
  let g = Tdmd_graph.Digraph.create 3 in
  Tdmd_graph.Digraph.add_edge g 0 1;
  let ok = Flow.make ~id:0 ~rate:1 ~path:[ 0; 1 ] in
  let bad = Flow.make ~id:1 ~rate:1 ~path:[ 1; 2 ] in
  ignore (Tdmd.Instance.make ~graph:g ~flows:[ ok ] ~lambda:0.5);
  Alcotest.check_raises "lambda out of range"
    (Invalid_argument "Instance.make: lambda must lie in [0, 1]") (fun () ->
      ignore (Tdmd.Instance.make ~graph:g ~flows:[ ok ] ~lambda:1.5));
  (try
     ignore (Tdmd.Instance.make ~graph:g ~flows:[ bad ] ~lambda:0.5);
     Alcotest.fail "expected path rejection"
   with Invalid_argument _ -> ())

let test_tree_instance_validation () =
  let tree = Tdmd_topo.Topo_tree.balanced ~arity:2 ~depth:2 in
  let good = Flow.make ~id:0 ~rate:2 ~path:(Tdmd_tree.Rooted_tree.path_to_root tree 3) in
  ignore (Tdmd.Instance.Tree.make ~tree ~flows:[ good ] ~lambda:0.5);
  (* Source must be a leaf. *)
  let from_internal =
    Flow.make ~id:1 ~rate:1 ~path:(Tdmd_tree.Rooted_tree.path_to_root tree 1)
  in
  Alcotest.check_raises "internal source"
    (Invalid_argument "Instance.Tree.make: flow source is not a leaf") (fun () ->
      ignore (Tdmd.Instance.Tree.make ~tree ~flows:[ from_internal ] ~lambda:0.5));
  (* Path must be the leaf-to-root path. *)
  let wrong_path = Flow.make ~id:2 ~rate:1 ~path:[ 3; 1 ] in
  Alcotest.check_raises "partial path"
    (Invalid_argument "Instance.Tree.make: flow path is not the leaf-to-root path")
    (fun () -> ignore (Tdmd.Instance.Tree.make ~tree ~flows:[ wrong_path ] ~lambda:0.5))

let test_tree_instance_merges () =
  let tree = Tdmd_topo.Topo_tree.star 4 in
  let path = Tdmd_tree.Rooted_tree.path_to_root tree 2 in
  let flows =
    [ Flow.make ~id:0 ~rate:2 ~path; Flow.make ~id:1 ~rate:3 ~path ]
  in
  let inst = Tdmd.Instance.Tree.make ~tree ~flows ~lambda:0.5 in
  Alcotest.(check int) "merged to one" 1 (Array.length inst.Tdmd.Instance.Tree.flows);
  Alcotest.(check int) "rate summed" 5 inst.Tdmd.Instance.Tree.flows.(0).Flow.rate

let test_subtree_rates () =
  let inst = Fixtures.fig5_instance () in
  let r = Tdmd.Instance.Tree.subtree_rate inst in
  Alcotest.(check int) "root holds all" 9 r.(0);
  Alcotest.(check int) "left subtree" 3 r.(1);
  Alcotest.(check int) "right subtree" 6 r.(2);
  Alcotest.(check int) "leaf" 5 r.(6);
  let s = Tdmd.Instance.Tree.source_rate inst in
  Alcotest.(check int) "no internal sources" 0 s.(0);
  Alcotest.(check int) "leaf source" 5 s.(6)

let test_allocation_first_box () =
  let inst = Fixtures.fig1_instance () in
  let f1 = (Tdmd.Instance.flows inst) |> List.hd in
  (* f1 path: v5 -> v3 -> v1 (ids 4, 2, 0). *)
  (match A.serve (P.of_list [ 2; 4 ]) f1 with
  | A.Served_at { vertex; l } ->
    Alcotest.(check int) "earliest box wins" 4 vertex;
    Alcotest.(check int) "offset" 0 l
  | A.Unserved -> Alcotest.fail "expected served");
  (match A.serve (P.of_list [ 0; 2 ]) f1 with
  | A.Served_at { vertex; l } ->
    Alcotest.(check int) "mid-path box" 2 vertex;
    Alcotest.(check int) "offset" 1 l
  | A.Unserved -> Alcotest.fail "expected served");
  Alcotest.(check bool) "off-path unserved" true (A.serve (P.of_list [ 1 ]) f1 = A.Unserved)

let test_flow_consumption_formula () =
  let f = Flow.make ~id:0 ~rate:4 ~path:[ 9; 8; 7; 6 ] in
  (* 3 hops, rate 4, lambda 0.25. *)
  let lam = 0.25 in
  Alcotest.(check (float 1e-9)) "unserved" 12.0 (B.flow_consumption ~lambda:lam f A.Unserved);
  Alcotest.(check (float 1e-9)) "served at source" 3.0
    (B.flow_consumption ~lambda:lam f (A.Served_at { vertex = 9; l = 0 }));
  Alcotest.(check (float 1e-9)) "served mid" 6.0
    (B.flow_consumption ~lambda:lam f (A.Served_at { vertex = 7; l = 1 }));
  Alcotest.(check (float 1e-9)) "served at dst" 12.0
    (B.flow_consumption ~lambda:lam f (A.Served_at { vertex = 6; l = 3 }))

(* Eq. 1 invariant: total = volume - decrement for any placement. *)
let prop_objective_identity =
  QCheck.Test.make ~name:"b(P) + d(P) = total volume" ~count:80
    QCheck.(pair (int_bound 100000) (int_range 3 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:n ~max_rate:6
          ~lambda:(Rng.float rng 1.0)
      in
      let vs = Rng.sample_without_replacement rng n (Rng.int rng n) in
      let p = P.of_list vs in
      Float.abs
        (B.total inst p +. B.decrement inst p
        -. float_of_int (Tdmd.Instance.total_path_volume inst))
      < 1e-6)

(* Monotonicity: adding a middlebox never increases bandwidth. *)
let prop_adding_box_helps =
  QCheck.Test.make ~name:"adding a box never increases b(P)" ~count:80
    QCheck.(triple (int_bound 100000) (int_range 3 12) (int_bound 11))
    (fun (seed, n, v) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:n ~max_rate:5 ~lambda:0.5
      in
      let v = v mod n in
      let p = P.of_list (Rng.sample_without_replacement rng n (Rng.int rng n)) in
      B.total inst (P.add p v) <= B.total inst p +. 1e-9)

let suite =
  [
    Alcotest.test_case "placement: set operations" `Quick test_placement_ops;
    Alcotest.test_case "instance: validation" `Quick test_instance_validation;
    Alcotest.test_case "tree instance: validation" `Quick test_tree_instance_validation;
    Alcotest.test_case "tree instance: merges same source" `Quick
      test_tree_instance_merges;
    Alcotest.test_case "tree instance: subtree rates" `Quick test_subtree_rates;
    Alcotest.test_case "allocation: first box on path" `Quick
      test_allocation_first_box;
    Alcotest.test_case "bandwidth: consumption formula" `Quick
      test_flow_consumption_formula;
    QCheck_alcotest.to_alcotest prop_objective_identity;
    QCheck_alcotest.to_alcotest prop_adding_box_helps;
  ]
