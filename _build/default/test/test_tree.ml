module Rt = Tdmd_tree.Rooted_tree
module Lca = Tdmd_tree.Lca

(* The Fig. 5 tree: 0 root; 1,2 children; 3,4 under 1; 5 under 2;
   6,7 under 5. *)
let fig5 () = Rt.of_parents ~root:0 [| -1; 0; 0; 1; 1; 2; 5; 5 |]

let test_structure () =
  let t = fig5 () in
  Alcotest.(check int) "size" 8 (Rt.size t);
  Alcotest.(check int) "root" 0 (Rt.root t);
  Alcotest.(check int) "parent of 6" 5 (Rt.parent t 6);
  Alcotest.(check int) "parent of root" (-1) (Rt.parent t 0);
  Alcotest.(check (list int)) "children of 1" [ 3; 4 ] (Rt.children t 1);
  Alcotest.(check (list int)) "leaves" [ 3; 4; 6; 7 ] (Rt.leaves t);
  Alcotest.(check int) "depth of 7" 3 (Rt.depth t 7);
  Alcotest.(check int) "height" 3 (Rt.height t);
  Alcotest.(check bool) "leaf" true (Rt.is_leaf t 3);
  Alcotest.(check bool) "internal" false (Rt.is_leaf t 2)

let test_traversals () =
  let t = fig5 () in
  let post = Rt.postorder t in
  Alcotest.(check int) "postorder length" 8 (List.length post);
  (* Children precede parents. *)
  let pos = Array.make 8 0 in
  List.iteri (fun i v -> pos.(v) <- i) post;
  for v = 1 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "child %d before parent" v)
      true
      (pos.(v) < pos.(Rt.parent t v))
  done;
  Alcotest.(check (list int)) "path to root" [ 7; 5; 2; 0 ] (Rt.path_to_root t 7);
  Alcotest.(check (list int)) "subtree of 5" [ 5; 6; 7 ]
    (List.sort compare (Rt.subtree_vertices t 5))

let test_ancestry () =
  let t = fig5 () in
  Alcotest.(check bool) "self ancestor (Def. 3)" true (Rt.is_ancestor t ~anc:6 ~desc:6);
  Alcotest.(check bool) "root ancestor of all" true (Rt.is_ancestor t ~anc:0 ~desc:7);
  Alcotest.(check bool) "cousin not ancestor" false (Rt.is_ancestor t ~anc:1 ~desc:6)

let test_rejects () =
  Alcotest.check_raises "cycle" (Invalid_argument "Rooted_tree: not a connected tree")
    (fun () -> ignore (Rt.of_parents ~root:0 [| -1; 2; 1 |]));
  Alcotest.check_raises "bad root"
    (Invalid_argument "Rooted_tree: root must have parent -1") (fun () ->
      ignore (Rt.of_parents ~root:0 [| 1; -1 |]))

let test_of_digraph () =
  let g = Tdmd_graph.Digraph.create 4 in
  Tdmd_graph.Digraph.add_undirected g 0 1;
  Tdmd_graph.Digraph.add_undirected g 1 2;
  Tdmd_graph.Digraph.add_undirected g 1 3;
  let t = Rt.of_digraph g ~root:0 in
  Alcotest.(check int) "depth 2" 2 (Rt.depth t 2);
  Alcotest.(check (list int)) "leaves" [ 2; 3 ] (Rt.leaves t);
  (* Extra edge makes it a non-tree. *)
  Tdmd_graph.Digraph.add_undirected g 2 3;
  Alcotest.check_raises "non-tree"
    (Invalid_argument "Rooted_tree.of_digraph: graph has extra edges") (fun () ->
      ignore (Rt.of_digraph g ~root:0))

let test_to_digraph () =
  let t = fig5 () in
  let g = Rt.to_digraph t in
  Alcotest.(check int) "arcs = n-1" 7 (Tdmd_graph.Digraph.edge_count g);
  Alcotest.(check bool) "child->parent arc" true (Tdmd_graph.Digraph.mem_edge g 7 5);
  Alcotest.(check bool) "no reverse arc" false (Tdmd_graph.Digraph.mem_edge g 5 7)

let test_lca_fig5 () =
  let t = fig5 () in
  let l = Lca.build t in
  (* Paper's examples on its Fig. 5 (1-based v4,v5 -> v2 etc.). *)
  Alcotest.(check int) "lca(3,4)=1" 1 (Lca.query l 3 4);
  Alcotest.(check int) "lca(0,5)=0" 0 (Lca.query l 0 5);
  Alcotest.(check int) "lca(6,7)=5" 5 (Lca.query l 6 7);
  Alcotest.(check int) "lca(3,6)=0" 0 (Lca.query l 3 6);
  Alcotest.(check int) "lca(v,v)=v" 6 (Lca.query l 6 6);
  Alcotest.(check int) "lca with ancestor" 2 (Lca.query l 2 7);
  Alcotest.(check int) "distance" 5 (Lca.distance l 3 7)

let prop_lca_matches_naive =
  QCheck.Test.make ~name:"binary-lifting LCA = naive LCA" ~count:100
    QCheck.(triple (int_range 2 60) (int_bound 10000) (int_bound 999))
    (fun (n, seed, qseed) ->
      let rng = Tdmd_prelude.Rng.create seed in
      let t = Tdmd_topo.Topo_tree.random_attachment rng n in
      let l = Lca.build t in
      let qrng = Tdmd_prelude.Rng.create qseed in
      let ok = ref true in
      for _ = 1 to 30 do
        let u = Tdmd_prelude.Rng.int qrng n and v = Tdmd_prelude.Rng.int qrng n in
        if Lca.query l u v <> Lca.naive t u v then ok := false
      done;
      !ok)

let prop_postorder_valid =
  QCheck.Test.make ~name:"postorder visits children first" ~count:100
    QCheck.(pair (int_range 1 80) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Tdmd_prelude.Rng.create seed in
      let t = Tdmd_topo.Topo_tree.random_attachment rng n in
      let pos = Array.make n (-1) in
      List.iteri (fun i v -> pos.(v) <- i) (Rt.postorder t);
      Array.for_all (fun p -> p >= 0) pos
      && List.for_all
           (fun v -> v = Rt.root t || pos.(v) < pos.(Rt.parent t v))
           (List.init n (fun i -> i)))

let suite =
  [
    Alcotest.test_case "rooted tree: structure" `Quick test_structure;
    Alcotest.test_case "rooted tree: traversals" `Quick test_traversals;
    Alcotest.test_case "rooted tree: ancestry" `Quick test_ancestry;
    Alcotest.test_case "rooted tree: rejects" `Quick test_rejects;
    Alcotest.test_case "rooted tree: of_digraph" `Quick test_of_digraph;
    Alcotest.test_case "rooted tree: to_digraph" `Quick test_to_digraph;
    Alcotest.test_case "lca: fig5 queries" `Quick test_lca_fig5;
    QCheck_alcotest.to_alcotest prop_lca_matches_naive;
    QCheck_alcotest.to_alcotest prop_postorder_valid;
  ]
