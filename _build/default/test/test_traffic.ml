open Tdmd_prelude
module Rd = Tdmd_traffic.Rate_dist
module W = Tdmd_traffic.Workload
module Rt = Tdmd_tree.Rooted_tree

let test_rate_bounds () =
  let rng = Rng.create 9 in
  let check_dist name dist lo hi =
    for _ = 1 to 500 do
      let r = Rd.sample dist rng in
      if r < lo || r > hi then
        Alcotest.failf "%s: rate %d outside [%d,%d]" name r lo hi
    done
  in
  check_dist "constant" (Rd.Constant 4) 4 4;
  check_dist "uniform" (Rd.Uniform (2, 6)) 2 6;
  check_dist "pareto" (Rd.Pareto_int { alpha = 1.3; x_min = 3; cap = 40 }) 3 40;
  check_dist "caida" (Rd.Caida_like { r_max = 50 }) 1 50

let test_caida_is_heavy_tailed () =
  let rng = Rng.create 10 in
  let dist = Rd.Caida_like { r_max = 50 } in
  let n = 5000 in
  let samples = List.init n (fun _ -> Rd.sample dist rng) in
  let mice = List.length (List.filter (fun r -> r <= 2) samples) in
  let elephants = List.length (List.filter (fun r -> r >= 10) samples) in
  (* ~80% mice, a few percent elephants: the property that makes
     placement matter. *)
  Alcotest.(check bool) "mice fraction ~0.8" true
    (float_of_int mice /. float_of_int n > 0.7);
  Alcotest.(check bool) "some elephants" true (elephants > 0);
  Alcotest.(check bool) "elephants are a minority" true (elephants * 4 < n)

let test_mean_estimates () =
  Alcotest.(check (float 1e-9)) "constant mean" 4.0 (Rd.mean (Rd.Constant 4));
  Alcotest.(check (float 1e-9)) "uniform mean" 4.0 (Rd.mean (Rd.Uniform (2, 6)));
  let rng = Rng.create 11 in
  let dist = Rd.Caida_like { r_max = 20 } in
  let n = 20000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rd.sample dist rng
  done;
  let empirical = float_of_int !sum /. float_of_int n in
  let predicted = Rd.mean dist in
  Alcotest.(check bool)
    (Printf.sprintf "mean estimate close (pred %.2f emp %.2f)" predicted empirical)
    true
    (Float.abs (predicted -. empirical) /. empirical < 0.35)

let test_tree_flows_density () =
  let rng = Rng.create 12 in
  let tree = Tdmd_topo.Topo_tree.random_attachment rng 20 in
  let flows =
    W.tree_flows rng tree ~rates:(Rd.Constant 2) ~density:0.5 ~link_capacity:20 ()
  in
  Alcotest.(check bool) "some flows" true (flows <> []);
  let d = W.density ~links:(W.tree_link_count tree) ~link_capacity:20 flows in
  Alcotest.(check bool) "density reached" true (d >= 0.5);
  (* One extra flow at most overshoots by its own volume. *)
  Alcotest.(check bool) "no wild overshoot" true (d < 0.7);
  (* All paths run leaf -> root. *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "starts at leaf" true
        (Rt.is_leaf tree (Tdmd_flow.Flow.src f));
      Alcotest.(check int) "ends at root" (Rt.root tree) (Tdmd_flow.Flow.dst f))
    flows

let test_general_flows () =
  let rng = Rng.create 13 in
  let g = Tdmd_topo.Topo_general.erdos_renyi rng 15 ~p:0.3 in
  let dests = [ 0; 1 ] in
  let flows =
    W.general_flows rng g ~dests ~rates:(Rd.Uniform (1, 5)) ~density:0.4
      ~link_capacity:30 ()
  in
  Alcotest.(check bool) "some flows" true (flows <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "valid path" true (Tdmd_flow.Flow.validate g f = Ok ());
      Alcotest.(check bool) "destination is red node" true
        (List.mem (Tdmd_flow.Flow.dst f) dests))
    flows;
  let d = W.density ~links:(W.general_link_count g) ~link_capacity:30 flows in
  Alcotest.(check bool) "density reached" true (d >= 0.4)

let test_empty_cases () =
  let rng = Rng.create 14 in
  let single = Tdmd_topo.Topo_tree.path 1 in
  Alcotest.(check (list reject)) "no flows on single vertex" []
    (W.tree_flows rng single ~rates:(Rd.Constant 1) ~density:0.5 ());
  let g = Tdmd_graph.Digraph.create 3 in
  Alcotest.(check (list reject)) "no flows without links" []
    (W.general_flows rng g ~dests:[ 0 ] ~rates:(Rd.Constant 1) ~density:0.5 ())

let suite =
  [
    Alcotest.test_case "rates: bounds" `Quick test_rate_bounds;
    Alcotest.test_case "rates: caida heavy tail" `Quick test_caida_is_heavy_tailed;
    Alcotest.test_case "rates: mean estimates" `Quick test_mean_estimates;
    Alcotest.test_case "workload: tree density targeting" `Quick
      test_tree_flows_density;
    Alcotest.test_case "workload: general flows" `Quick test_general_flows;
    Alcotest.test_case "workload: degenerate inputs" `Quick test_empty_cases;
  ]
