test/test_flow.ml: Alcotest Gen List QCheck QCheck_alcotest Tdmd_flow Tdmd_graph
