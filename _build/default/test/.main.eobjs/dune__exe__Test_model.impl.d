test/test_model.ml: Alcotest Array Fixtures Float List QCheck QCheck_alcotest Rng Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_tree
