test/test_setcover.ml: Alcotest Fixtures List QCheck QCheck_alcotest Tdmd Tdmd_graph Tdmd_prelude Tdmd_setcover
