test/test_graph_extra.ml: Alcotest Array Float List Listx QCheck QCheck_alcotest Rng Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_tree
