test/test_traffic.ml: Alcotest Float List Printf Rng Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_traffic Tdmd_tree
