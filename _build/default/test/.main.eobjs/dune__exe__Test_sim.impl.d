test/test_sim.ml: Alcotest Array List Rng Stats Tdmd Tdmd_graph Tdmd_prelude Tdmd_sim Tdmd_tree
