test/test_solvers.ml: Alcotest Array Fixtures Float List QCheck QCheck_alcotest Rng Tdmd Tdmd_prelude Tdmd_submod Tdmd_topo Tdmd_tree
