test/fixtures.ml: List Rng Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_tree
