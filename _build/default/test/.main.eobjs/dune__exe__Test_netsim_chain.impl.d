test/test_netsim_chain.ml: Alcotest Array Fixtures Float List Listx Printf QCheck QCheck_alcotest Rng String Tdmd Tdmd_flow Tdmd_graph Tdmd_netsim Tdmd_prelude Tdmd_topo Tdmd_traffic
