test/test_prelude.ml: Alcotest Array Histogram List Listx Parallel Rng Stats String Table Tdmd_prelude Timer
