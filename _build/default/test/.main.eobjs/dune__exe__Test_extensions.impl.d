test/test_extensions.ml: Alcotest Filename Fixtures Float Fun Hashtbl List Printf QCheck QCheck_alcotest Rng String Sys Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_traffic Tdmd_tree
