test/test_paper_examples.ml: Alcotest Fixtures List Printf Tdmd
