test/main.mli:
