test/test_tree.ml: Alcotest Array List Printf QCheck QCheck_alcotest Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_tree
