test/test_submod.ml: Alcotest Array Fixtures Float Hashtbl List QCheck QCheck_alcotest Rng Tdmd Tdmd_prelude Tdmd_submod
