test/test_heap.ml: Alcotest Binary_heap Float Hashtbl Indexed_heap List Pairing_heap QCheck QCheck_alcotest Tdmd_heap
