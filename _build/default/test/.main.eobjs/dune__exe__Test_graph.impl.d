test/test_graph.ml: Alcotest Array List QCheck QCheck_alcotest String Tdmd_graph Tdmd_prelude Tdmd_topo
