test/test_experiments.ml: Alcotest List String Tdmd_prelude Tdmd_sim
