test/test_topo.ml: Alcotest List QCheck QCheck_alcotest Rng String Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_tree
