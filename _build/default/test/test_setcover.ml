module Sc = Tdmd_setcover.Setcover
module Red = Tdmd_setcover.Reduction

(* The paper's Fig. 2 instance: universe {f1..f4} (ids 0..3),
   S1 = {f1,f2,f4}, S2 = {f1,f2}, S3 = {f3}. *)
let fig2 () = Sc.make ~universe:4 [ [ 0; 1; 3 ]; [ 0; 1 ]; [ 2 ] ]

let test_fig2_cover () =
  let sc = fig2 () in
  (match Sc.exact sc with
  | None -> Alcotest.fail "cover expected"
  | Some cover ->
    (* "the minimum number of subsets ... is S1 and S3" *)
    Alcotest.(check (list int)) "minimum cover" [ 0; 2 ] (List.sort compare cover));
  Alcotest.(check bool) "k=2 decision" true (Sc.decision sc ~k:2);
  Alcotest.(check bool) "k=1 decision" false (Sc.decision sc ~k:1)

let test_greedy_cover () =
  let sc = fig2 () in
  match Sc.greedy sc with
  | None -> Alcotest.fail "greedy cover expected"
  | Some cover ->
    Alcotest.(check bool) "covers" true (Sc.covers sc cover);
    Alcotest.(check (list int)) "greedy = {S1,S3}" [ 0; 2 ] (List.sort compare cover)

let test_uncoverable () =
  let sc = Sc.make ~universe:3 [ [ 0 ]; [ 1 ] ] in
  Alcotest.(check (option (list int))) "greedy none" None (Sc.greedy sc);
  Alcotest.(check (option (list int))) "exact none" None (Sc.exact sc);
  Alcotest.(check bool) "decision false" false (Sc.decision sc ~k:5)

let test_empty_universe () =
  let sc = Sc.make ~universe:0 [ [] ] in
  Alcotest.(check (option (list int))) "greedy empty" (Some []) (Sc.greedy sc);
  Alcotest.(check (option (list int))) "exact empty" (Some []) (Sc.exact sc)

let test_forward_reduction () =
  (* Theorem 1 construction on Fig. 2: the TDMD instance it builds must
     be feasible with k boxes iff the set-cover decision holds. *)
  let sc = fig2 () in
  let g, flows = Red.to_tdmd sc in
  Alcotest.(check int) "one vertex per set" 3 (Tdmd_graph.Digraph.vertex_count g);
  Alcotest.(check int) "one flow per element" 4 (List.length flows);
  (* Deploying on {v1, v3} (ids 0,2) serves all flows. *)
  let inst = Tdmd.Instance.make ~graph:g ~flows ~lambda:0.5 in
  Alcotest.(check bool) "cover placement feasible" true
    (Tdmd.Feasibility.check inst (Tdmd.Placement.of_list [ 0; 2 ]));
  Alcotest.(check bool) "non-cover placement infeasible" false
    (Tdmd.Feasibility.check inst (Tdmd.Placement.of_list [ 1; 2 ]));
  Alcotest.(check bool) "feasible with 2" true (Tdmd.Feasibility.feasible_exists inst ~k:2);
  Alcotest.(check bool) "infeasible with 1" false
    (Tdmd.Feasibility.feasible_exists inst ~k:1)

let test_reduction_rejects_empty_element () =
  let sc = Sc.make ~universe:2 [ [ 0 ] ] in
  Alcotest.check_raises "element in no set"
    (Invalid_argument "Reduction.to_tdmd: element contained in no set") (fun () ->
      ignore (Red.to_tdmd sc))

let test_backward_reduction () =
  let inst = Fixtures.fig1_instance () in
  let sc = Tdmd.Feasibility.to_setcover inst in
  Alcotest.(check int) "universe = flows" 4 sc.Sc.universe;
  (* Minimum cover of Fig. 1 is 2 ({v2,v5} works, nothing of size 1). *)
  Alcotest.(check int) "min middleboxes" 2 (Tdmd.Feasibility.min_middleboxes inst);
  Alcotest.(check bool) "exists k=2" true (Tdmd.Feasibility.feasible_exists inst ~k:2);
  Alcotest.(check bool) "not k=1" false (Tdmd.Feasibility.feasible_exists inst ~k:1);
  match Tdmd.Feasibility.greedy_cover inst with
  | None -> Alcotest.fail "cover expected"
  | Some p -> Alcotest.(check bool) "greedy cover feasible" true
                (Tdmd.Feasibility.check inst p)

(* Property: greedy covers whenever exact does, and is never smaller. *)
let prop_greedy_vs_exact =
  QCheck.Test.make ~name:"setcover: greedy valid, exact minimal" ~count:150
    QCheck.(pair (int_range 1 10) (int_bound 100000))
    (fun (u, seed) ->
      let rng = Tdmd_prelude.Rng.create seed in
      let n_sets = 1 + Tdmd_prelude.Rng.int rng 8 in
      let sets =
        List.init n_sets (fun _ ->
            List.filter (fun _ -> Tdmd_prelude.Rng.bool rng)
              (List.init u (fun e -> e)))
      in
      let sc = Sc.make ~universe:u sets in
      match (Sc.greedy sc, Sc.exact sc) with
      | None, None -> true
      | Some g, Some e ->
        Sc.covers sc g && Sc.covers sc e && List.length e <= List.length g
      | Some _, None | None, Some _ -> false)

(* Property: Theorem 1 equivalence — the set-cover decision equals TDMD
   feasibility of the constructed instance, for every k. *)
let prop_reduction_equivalence =
  QCheck.Test.make ~name:"theorem 1: cover(k) iff TDMD feasible(k)" ~count:100
    QCheck.(pair (int_range 1 8) (int_bound 100000))
    (fun (u, seed) ->
      let rng = Tdmd_prelude.Rng.create seed in
      let n_sets = 1 + Tdmd_prelude.Rng.int rng 6 in
      let sets =
        List.init n_sets (fun _ ->
            List.filter (fun _ -> Tdmd_prelude.Rng.bool rng)
              (List.init u (fun e -> e)))
      in
      (* Guarantee every element is somewhere so the construction is
         well-defined: one catch-all set. *)
      let sets = List.init u (fun e -> [ e ]) @ sets in
      let sc = Sc.make ~universe:u sets in
      let g, flows = Red.to_tdmd sc in
      let inst = Tdmd.Instance.make ~graph:g ~flows ~lambda:0.0 in
      List.for_all
        (fun k -> Sc.decision sc ~k = Tdmd.Feasibility.feasible_exists inst ~k)
        [ 1; 2; 3; u + n_sets ])

let suite =
  [
    Alcotest.test_case "fig2: exact + decision" `Quick test_fig2_cover;
    Alcotest.test_case "fig2: greedy" `Quick test_greedy_cover;
    Alcotest.test_case "uncoverable universe" `Quick test_uncoverable;
    Alcotest.test_case "empty universe" `Quick test_empty_universe;
    Alcotest.test_case "theorem1: forward reduction" `Quick test_forward_reduction;
    Alcotest.test_case "theorem1: rejects orphan elements" `Quick
      test_reduction_rejects_empty_element;
    Alcotest.test_case "theorem1: backward reduction (fig1)" `Quick
      test_backward_reduction;
    QCheck_alcotest.to_alcotest prop_greedy_vs_exact;
    QCheck_alcotest.to_alcotest prop_reduction_equivalence;
  ]
