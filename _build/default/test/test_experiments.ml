(* Smoke tests for the experiment harness itself: every figure driver
   runs end-to-end at reps = 1 and produces well-formed series with the
   expected sweep points and algorithm sets, and the renderers accept
   the results.  (The full-scale numbers live in bench/ and
   EXPERIMENTS.md; these tests protect the wiring.) *)

module E = Tdmd_sim.Experiments
module Report = Tdmd_sim.Report

let check_result ~algos ~points (r : E.result) =
  Alcotest.(check (list string))
    (r.E.fig_id ^ " algorithms")
    algos
    (List.map (fun s -> s.E.algorithm) r.E.series);
  List.iter
    (fun s ->
      Alcotest.(check int) (r.E.fig_id ^ " points") points (List.length s.E.points);
      List.iter
        (fun (p : Tdmd_sim.Runner.point) ->
          Alcotest.(check bool) "bandwidth positive" true
            (p.Tdmd_sim.Runner.bandwidth.Tdmd_prelude.Stats.mean > 0.0);
          Alcotest.(check bool) "time non-negative" true
            (p.Tdmd_sim.Runner.seconds.Tdmd_prelude.Stats.mean >= 0.0))
        s.E.points)
    r.E.series;
  (* Renderers accept it. *)
  Alcotest.(check bool) "renders" true (String.length (Report.render_result r) > 0);
  Alcotest.(check bool) "csv renders" true (String.length (Report.result_csv r) > 0)

let tree_algos = [ "Random"; "Best-effort"; "GTP"; "HAT"; "DP" ]
let general_algos = [ "Random"; "Best-effort"; "GTP" ]

let test_fig9 () = check_result ~algos:tree_algos ~points:6 (E.fig9 ~reps:1 ())
let test_fig10 () = check_result ~algos:tree_algos ~points:10 (E.fig10 ~reps:1 ())
let test_fig11 () = check_result ~algos:tree_algos ~points:6 (E.fig11 ~reps:1 ())
let test_fig12 () = check_result ~algos:tree_algos ~points:6 (E.fig12 ~reps:1 ())
let test_fig13 () = check_result ~algos:general_algos ~points:6 (E.fig13 ~reps:1 ())
let test_fig14 () = check_result ~algos:general_algos ~points:10 (E.fig14 ~reps:1 ())
let test_fig15 () = check_result ~algos:general_algos ~points:6 (E.fig15 ~reps:1 ())
let test_fig16 () = check_result ~algos:general_algos ~points:6 (E.fig16 ~reps:1 ())

let test_fig17 () =
  let g = E.fig17_tree ~reps:1 () in
  Alcotest.(check int) "grid cells" 9 (List.length g.E.cells);
  List.iter
    (fun (_, _, bw) -> Alcotest.(check bool) "cell >= 0" true (bw >= 0.0))
    g.E.cells;
  (* Spam filters: more budget cannot hurt at fixed density (same seeded
     instances per k in this harness, so compare means loosely). *)
  Alcotest.(check bool) "renders" true (String.length (Report.render_grid g) > 0)

let test_ablation () =
  let rows = E.ablation ~reps:1 () in
  Alcotest.(check bool) "has rows" true (List.length rows >= 10);
  let labels = List.map (fun r -> r.E.label) rows in
  List.iter
    (fun needed ->
      Alcotest.(check bool) (needed ^ " present") true (List.mem needed labels))
    [ "GTP plain"; "GTP CELF"; "Scaled DP (theta=4)"; "HAT"; "Local search on GTP";
      "Binary DP (eqs 7-8)"; "Incremental vs scratch GTP" ];
  (* CELF parity must hold in the harness too. *)
  let gap =
    List.find (fun r -> r.E.metric = "bandwidth gap vs plain") rows
  in
  Alcotest.(check (float 1e-9)) "celf gap zero" 0.0 gap.E.value;
  let agree =
    List.find (fun r -> r.E.label = "Binary DP (eqs 7-8)"
                        && r.E.metric = "value gap vs general DP") rows
  in
  Alcotest.(check (float 1e-9)) "binary dp gap zero" 0.0 agree.E.value;
  Alcotest.(check bool) "renders" true
    (String.length (Report.render_ablation rows) > 0)

(* Expected orderings at modest reps: the headline claims of Sec. 6.3. *)
let test_fig9_ordering () =
  let r = E.fig9 ~reps:3 () in
  let series name = List.find (fun s -> s.E.algorithm = name) r.E.series in
  List.iteri
    (fun i (dp_p : Tdmd_sim.Runner.point) ->
      let value (s : E.series) =
        (List.nth s.E.points i).Tdmd_sim.Runner.bandwidth.Tdmd_prelude.Stats.mean
      in
      let dp = dp_p.Tdmd_sim.Runner.bandwidth.Tdmd_prelude.Stats.mean in
      (* DP is optimal per instance, so its mean over the shared draws is
         a hard floor; the heuristics' relative order is a statistical
         claim, so allow a small tolerance at these low rep counts. *)
      Alcotest.(check bool) "DP <= HAT" true (dp <= value (series "HAT") +. 1e-6);
      Alcotest.(check bool) "DP <= GTP" true (dp <= value (series "GTP") +. 1e-6);
      Alcotest.(check bool) "DP <= Random" true (dp <= value (series "Random") +. 1e-6);
      Alcotest.(check bool) "HAT <~ GTP" true
        (value (series "HAT") <= (1.05 *. value (series "GTP")) +. 1e-6);
      Alcotest.(check bool) "GTP <~ Random" true
        (value (series "GTP") <= (1.05 *. value (series "Random")) +. 1e-6))
    (series "DP").E.points

let suite =
  [
    Alcotest.test_case "fig9 wiring" `Quick test_fig9;
    Alcotest.test_case "fig10 wiring" `Quick test_fig10;
    Alcotest.test_case "fig11 wiring" `Quick test_fig11;
    Alcotest.test_case "fig12 wiring" `Quick test_fig12;
    Alcotest.test_case "fig13 wiring" `Quick test_fig13;
    Alcotest.test_case "fig14 wiring" `Quick test_fig14;
    Alcotest.test_case "fig15 wiring" `Quick test_fig15;
    Alcotest.test_case "fig16 wiring" `Quick test_fig16;
    Alcotest.test_case "fig17 wiring" `Quick test_fig17;
    Alcotest.test_case "ablation wiring" `Quick test_ablation;
    Alcotest.test_case "fig9: paper ordering holds" `Slow test_fig9_ordering;
  ]
