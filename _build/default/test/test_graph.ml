module G = Tdmd_graph.Digraph
module Bfs = Tdmd_graph.Bfs
module Dijkstra = Tdmd_graph.Dijkstra
module Dsu = Tdmd_graph.Dsu

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3, plus a slow direct 0 -> 3. *)
  let g = G.create 4 in
  G.add_edge g 0 1;
  G.add_edge g 1 3;
  G.add_edge g 0 2;
  G.add_edge g 2 3;
  G.add_edge ~weight:5.0 g 0 3;
  g

let test_digraph_basics () =
  let g = diamond () in
  Alcotest.(check int) "vertices" 4 (G.vertex_count g);
  Alcotest.(check int) "arcs" 5 (G.edge_count g);
  Alcotest.(check bool) "mem" true (G.mem_edge g 0 1);
  Alcotest.(check bool) "directed" false (G.mem_edge g 1 0);
  Alcotest.(check int) "out degree" 3 (G.out_degree g 0);
  Alcotest.(check int) "in degree" 3 (G.in_degree g 3);
  Alcotest.(check (list int)) "succ order" [ 1; 2; 3 ] (G.succ g 0);
  Alcotest.(check (float 0.0)) "weight" 5.0 (G.weight g 0 3)

let test_digraph_rejects () =
  let g = G.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self-loop")
    (fun () -> G.add_edge g 1 1);
  Alcotest.check_raises "range" (Invalid_argument "Digraph: vertex out of range")
    (fun () -> G.add_edge g 0 7)

let test_digraph_duplicate_ignored () =
  let g = G.create 2 in
  G.add_edge ~weight:1.0 g 0 1;
  G.add_edge ~weight:9.0 g 0 1;
  Alcotest.(check int) "one arc" 1 (G.edge_count g);
  Alcotest.(check (float 0.0)) "first weight wins" 1.0 (G.weight g 0 1)

let test_induced () =
  let g = diamond () in
  let sub, mapping = G.induced g [| 0; 1; 3 |] in
  Alcotest.(check int) "sub vertices" 3 (G.vertex_count sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 3 |] mapping;
  Alcotest.(check bool) "0->1 kept" true (G.mem_edge sub 0 1);
  Alcotest.(check bool) "1->3 remapped" true (G.mem_edge sub 1 2);
  Alcotest.(check bool) "0->3 remapped" true (G.mem_edge sub 0 2);
  Alcotest.(check int) "edge count" 3 (G.edge_count sub)

let test_connectivity () =
  let g = G.create 4 in
  G.add_edge g 0 1;
  G.add_edge g 2 3;
  Alcotest.(check bool) "disconnected" false (G.is_connected_undirected g);
  G.add_edge g 3 1;
  Alcotest.(check bool) "connected ignoring direction" true
    (G.is_connected_undirected g)

let test_bfs () =
  let g = diamond () in
  let d = Bfs.distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 1; 1 |] d;
  match Bfs.shortest_path g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "path expected"
  | Some p ->
    Alcotest.(check int) "hop-shortest uses direct arc" 2 (List.length p);
    Alcotest.(check (list (pair int int))) "edges" [ (0, 3) ] (Bfs.path_to_edges p)

let test_bfs_unreachable () =
  let g = G.create 3 in
  G.add_edge g 0 1;
  Alcotest.(check (option (list int))) "unreachable" None
    (Bfs.shortest_path g ~src:0 ~dst:2);
  Alcotest.(check int) "max_int distance" max_int (Bfs.distances g 0).(2)

let test_dijkstra () =
  let g = diamond () in
  (match Dijkstra.shortest_path g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "path expected"
  | Some (p, w) ->
    (* Weighted shortest avoids the weight-5 direct arc. *)
    Alcotest.(check (float 0.0)) "weight 2" 2.0 w;
    Alcotest.(check int) "three vertices" 3 (List.length p));
  let d = Dijkstra.distances g 0 in
  Alcotest.(check (float 0.0)) "dist to 3" 2.0 d.(3)

let test_dijkstra_negative_rejected () =
  let g = G.create 2 in
  G.add_edge ~weight:(-1.0) g 0 1;
  Alcotest.check_raises "negative" (Invalid_argument "Dijkstra: negative edge weight")
    (fun () -> ignore (Dijkstra.distances g 0))

let test_dsu () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "classes" 5 (Dsu.count d);
  Alcotest.(check bool) "union" true (Dsu.union d 0 1);
  Alcotest.(check bool) "again" false (Dsu.union d 1 0);
  Alcotest.(check bool) "same" true (Dsu.same d 0 1);
  Alcotest.(check bool) "different" false (Dsu.same d 0 2);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 0 3);
  Alcotest.(check int) "classes after unions" 2 (Dsu.count d)

(* Property: on unit weights Dijkstra and BFS agree everywhere. *)
let prop_dijkstra_matches_bfs =
  QCheck.Test.make ~name:"dijkstra = bfs on unit weights" ~count:100
    QCheck.(pair (int_range 2 25) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Tdmd_prelude.Rng.create seed in
      let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.2 in
      let db = Bfs.distances g 0 in
      let dd = Dijkstra.distances g 0 in
      Array.for_all2
        (fun b d ->
          if b = max_int then d = infinity else float_of_int b = d)
        db dd)

let test_to_dot () =
  let g = G.create 2 in
  G.add_edge g 0 1;
  let dot = G.to_dot ~name:"t" g in
  Alcotest.(check bool) "mentions arc" true (contains dot "0 -> 1")

let suite =
  [
    Alcotest.test_case "digraph: basics" `Quick test_digraph_basics;
    Alcotest.test_case "digraph: rejects" `Quick test_digraph_rejects;
    Alcotest.test_case "digraph: duplicate arcs ignored" `Quick
      test_digraph_duplicate_ignored;
    Alcotest.test_case "digraph: induced subgraph" `Quick test_induced;
    Alcotest.test_case "digraph: connectivity" `Quick test_connectivity;
    Alcotest.test_case "bfs: diamond" `Quick test_bfs;
    Alcotest.test_case "bfs: unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "dijkstra: weighted diamond" `Quick test_dijkstra;
    Alcotest.test_case "dijkstra: rejects negative weights" `Quick
      test_dijkstra_negative_rejected;
    Alcotest.test_case "dsu: union-find" `Quick test_dsu;
    Alcotest.test_case "digraph: dot export" `Quick test_to_dot;
    QCheck_alcotest.to_alcotest prop_dijkstra_matches_bfs;
  ]
