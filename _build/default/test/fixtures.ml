(* Shared instances: the paper's two worked examples, plus random
   instance generators used across the test modules. *)

open Tdmd_prelude
module G = Tdmd_graph.Digraph
module Rt = Tdmd_tree.Rooted_tree
module Flow = Tdmd_flow.Flow

(* Paper Fig. 1: vertices v1..v6 are ids 0..5.  Flows (rates 4,2,2,2):
   f1: v5->v3->v1, f2: v6->v3->v2, f3: v6->v2, f4: v4->v2; lambda 0.5.
   (The flow paths are reverse-engineered from Tab. 2's marginal
   decrements and the worked totals 12 and 8 — every entry is pinned in
   test_paper_examples.) *)
let v1 = 0
and v2 = 1
and v3 = 2
and v4 = 3
and v5 = 4
and v6 = 5

let fig1_instance () =
  let g = G.create 6 in
  List.iter
    (fun (a, b) -> G.add_undirected g a b)
    [ (v5, v3); (v3, v1); (v6, v3); (v3, v2); (v6, v2); (v4, v2); (v2, v1) ];
  let flows =
    [
      Flow.make ~id:0 ~rate:4 ~path:[ v5; v3; v1 ];
      Flow.make ~id:1 ~rate:2 ~path:[ v6; v3; v2 ];
      Flow.make ~id:2 ~rate:2 ~path:[ v6; v2 ];
      Flow.make ~id:3 ~rate:2 ~path:[ v4; v2 ];
    ]
  in
  Tdmd.Instance.make ~graph:g ~flows ~lambda:0.5

(* Paper Fig. 5: binary tree v1..v8 (ids 0..7).
   v1 root; children v2, v3; v2's children v4, v5; v3's child v6;
   v6's children v7, v8.  Flows: f1 (r=2) at v4, f4 (r=1) at v5,
   f3 (r=5) at v7, f2 (r=1) at v8; lambda 0.5. *)
let fig5_tree () =
  (*            ids:  v1=0 v2=1 v3=2 v4=3 v5=4 v6=5 v7=6 v8=7 *)
  Rt.of_parents ~root:0 [| -1; 0; 0; 1; 1; 2; 5; 5 |]

let fig5_instance () =
  let tree = fig5_tree () in
  let flow id rate leaf = Flow.make ~id ~rate ~path:(Rt.path_to_root tree leaf) in
  let flows = [ flow 0 2 3; flow 1 1 7; flow 2 5 6; flow 3 1 4 ] in
  Tdmd.Instance.Tree.make ~tree ~flows ~lambda:0.5

(* Random small instances for cross-checking solvers. *)

let random_tree_instance rng ~n ~max_rate ~lambda =
  let tree = Tdmd_topo.Topo_tree.random_attachment rng n in
  let leaves = List.filter (fun v -> v <> Rt.root tree) (Rt.leaves tree) in
  let flows =
    List.mapi
      (fun id leaf ->
        Flow.make ~id ~rate:(Rng.int_in rng 1 max_rate)
          ~path:(Rt.path_to_root tree leaf))
      leaves
  in
  Tdmd.Instance.Tree.make ~tree ~flows ~lambda

let random_general_instance rng ~n ~flows:count ~max_rate ~lambda =
  let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.25 in
  let rec draw id acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let src = Rng.int rng n and dst = Rng.int rng n in
      if src = dst then draw id acc remaining
      else begin
        match Tdmd_graph.Bfs.shortest_path g ~src ~dst with
        | None -> draw id acc remaining
        | Some path ->
          let f = Flow.make ~id ~rate:(Rng.int_in rng 1 max_rate) ~path in
          draw (id + 1) (f :: acc) (remaining - 1)
      end
    end
  in
  Tdmd.Instance.make ~graph:g ~flows:(draw 0 [] count) ~lambda
