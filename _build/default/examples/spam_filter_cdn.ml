(* Spam filters at a CDN-style aggregation tree.

   The paper's headline use case (Sec. 1): spam filters cut 100% of the
   matched traffic (lambda = 0), and the operator can afford only k
   filter instances.  We model a content-delivery aggregation tree whose
   leaves are edge PoPs sending CAIDA-like flow mixes towards the origin
   at the root, and compare every tree solver at several budgets.

   Run with:  dune exec examples/spam_filter_cdn.exe *)

open Tdmd_prelude
module Rt = Tdmd_tree.Rooted_tree

let () =
  let rng = Rng.create 2024 in
  (* Aggregation tree: origin -> regions -> edge PoPs. *)
  let tree = Tdmd_topo.Topo_tree.balanced ~arity:3 ~depth:2 in
  let flows =
    Tdmd_traffic.Workload.tree_flows rng tree
      ~rates:(Tdmd_traffic.Rate_dist.Caida_like { r_max = 12 })
      ~density:0.5 ~link_capacity:25 ()
  in
  let inst = Tdmd.Instance.Tree.make ~tree ~flows ~lambda:0.0 in
  let volume = Tdmd.Instance.total_path_volume (Tdmd.Instance.Tree.to_general inst) in
  Format.printf
    "CDN tree: %d nodes (%d PoPs), %d distinct flows, unfiltered volume %d@."
    (Rt.size tree)
    (List.length (Rt.leaves tree))
    (Array.length inst.Tdmd.Instance.Tree.flows)
    volume;
  Format.printf "Spam filter: lambda = 0 (matched traffic is dropped entirely)@.@.";

  let t = Table.create [ "k"; "DP (optimal)"; "HAT"; "GTP"; "filters at" ] in
  List.iter
    (fun k ->
      let dp = Tdmd.Dp.solve ~k inst in
      let hat = Tdmd.Hat.run ~k inst in
      let gtp = Tdmd.Gtp.run ~budget:k (Tdmd.Instance.Tree.to_general inst) in
      Table.add_row t
        [
          string_of_int k;
          Table.cell_float dp.Tdmd.Dp.bandwidth;
          Table.cell_float hat.Tdmd.Hat.bandwidth;
          Table.cell_float gtp.Tdmd.Gtp.bandwidth;
          Format.asprintf "%a" Tdmd.Placement.pp dp.Tdmd.Dp.placement;
        ])
    [ 1; 2; 4; 6; 9 ];
  Table.print t;
  Format.printf
    "@.Reading: with few filters the optimum pushes them towards the origin@.";
  Format.printf
    "(sharing); as k grows they migrate to the PoPs, intercepting spam at@.";
  Format.printf "the source - the trade-off the paper's Fig. 1 illustrates.@."
