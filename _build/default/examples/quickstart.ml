(* Quickstart: the paper's Fig. 1 example end to end.

   Build the six-switch network, declare the four flows, and place
   traffic-diminishing middleboxes (lambda = 0.5) with every solver the
   library offers for general topologies.

   Run with:  dune exec examples/quickstart.exe *)

module G = Tdmd_graph.Digraph
module Flow = Tdmd_flow.Flow

let () =
  (* Vertices v1..v6 of Fig. 1 are ids 0..5. *)
  let g = G.create 6 in
  List.iter
    (fun (a, b) -> G.add_undirected g a b)
    [ (4, 2); (2, 0); (5, 2); (2, 1); (5, 1); (3, 1); (1, 0) ];
  let flows =
    [
      Flow.make ~id:0 ~rate:4 ~path:[ 4; 2; 0 ];  (* f1: v5 -> v3 -> v1 *)
      Flow.make ~id:1 ~rate:2 ~path:[ 5; 2; 1 ];  (* f2: v6 -> v3 -> v2 *)
      Flow.make ~id:2 ~rate:2 ~path:[ 5; 1 ];     (* f3: v6 -> v2 *)
      Flow.make ~id:3 ~rate:2 ~path:[ 3; 1 ];     (* f4: v4 -> v2 *)
    ]
  in
  let inst = Tdmd.Instance.make ~graph:g ~flows ~lambda:0.5 in
  Format.printf "Fig. 1 instance: %d switches, %d flows, unprocessed volume %d@."
    (Tdmd.Instance.vertex_count inst)
    (Tdmd.Instance.flow_count inst)
    (Tdmd.Instance.total_path_volume inst);

  let show name placement bandwidth feasible =
    Format.printf "  %-12s P = %a  b(P) = %g%s@." name Tdmd.Placement.pp placement
      bandwidth
      (if feasible then "" else "  (infeasible)")
  in

  List.iter
    (fun k ->
      Format.printf "@.budget k = %d:@." k;
      let gtp = Tdmd.Gtp.run ~budget:k inst in
      show "GTP" gtp.Tdmd.Gtp.placement gtp.Tdmd.Gtp.bandwidth gtp.Tdmd.Gtp.feasible;
      let brute = Tdmd.Brute.solve ~k inst in
      show "optimal" brute.Tdmd.Brute.placement brute.Tdmd.Brute.bandwidth
        brute.Tdmd.Brute.feasible;
      let rng = Tdmd_prelude.Rng.create 1 in
      let rand = Tdmd.Baselines.random rng ~k inst in
      show "Random" rand.Tdmd.Baselines.placement rand.Tdmd.Baselines.bandwidth
        rand.Tdmd.Baselines.feasible)
    [ 2; 3 ];

  Format.printf "@.Feasibility: minimum middleboxes to serve every flow = %d@."
    (Tdmd.Feasibility.min_middleboxes inst);
  Format.printf
    "With k = 3 the optimum places a spam filter on every flow source and@.";
  Format.printf "halves the total bandwidth: 16 -> 8, exactly as in the paper.@."
