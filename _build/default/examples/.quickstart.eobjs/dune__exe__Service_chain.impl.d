examples/service_chain.ml: List Printf Rng String Table Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_traffic
