examples/spam_filter_cdn.mli:
