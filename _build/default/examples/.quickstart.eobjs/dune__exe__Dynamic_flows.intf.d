examples/dynamic_flows.mli:
