examples/quickstart.mli:
