examples/wan_optimizer.mli:
