examples/datacenter_fattree.ml: Format List Printf Rng Table Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo
