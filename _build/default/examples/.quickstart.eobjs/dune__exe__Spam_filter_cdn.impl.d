examples/spam_filter_cdn.ml: Array Format List Rng Table Tdmd Tdmd_prelude Tdmd_topo Tdmd_traffic Tdmd_tree
