examples/wan_optimizer.ml: Format List Printf Rng Table Tdmd Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_traffic
