examples/quickstart.ml: Format List Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude
