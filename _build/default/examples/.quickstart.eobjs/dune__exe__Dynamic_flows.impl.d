examples/dynamic_flows.ml: Array List Printf Rng Table Tdmd Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_topo Tdmd_traffic
