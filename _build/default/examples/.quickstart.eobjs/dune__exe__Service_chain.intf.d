examples/service_chain.mli:
