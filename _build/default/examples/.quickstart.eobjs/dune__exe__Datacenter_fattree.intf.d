examples/datacenter_fattree.mli:
