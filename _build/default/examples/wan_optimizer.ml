(* WAN optimizers on a measurement-infrastructure topology.

   Citrix CloudBridge-style WAN optimizers compress traffic down to a
   fraction of its original volume (the paper quotes up to 80%
   reduction, i.e. lambda ~ 0.2-0.8).  We place a limited number of them
   on an Ark-like WAN where monitor sites send flows to hub collectors,
   and compare GTP with the paper's two baselines across several
   compression strengths.

   Run with:  dune exec examples/wan_optimizer.exe *)

open Tdmd_prelude

let () =
  let rng = Rng.create 77 in
  let ark = Tdmd_topo.Ark.generate rng ~n:48 in
  let graph, dests = Tdmd_topo.Ark.general_of rng ark ~size:34 in
  let flows =
    Tdmd_traffic.Workload.general_flows rng graph ~dests
      ~rates:(Tdmd_traffic.Rate_dist.Caida_like { r_max = 40 })
      ~density:0.5 ~link_capacity:50 ()
  in
  Format.printf "WAN: %d sites, %d collector sites, %d flows@."
    (Tdmd_graph.Digraph.vertex_count graph)
    (List.length dests) (List.length flows);

  let k = 9 in
  Format.printf "Budget: %d WAN optimizer appliances@.@." k;
  let t =
    Table.create [ "lambda"; "no optimizers"; "Random"; "Best-effort"; "GTP"; "GTP saves" ]
  in
  List.iter
    (fun lambda ->
      let inst = Tdmd.Instance.make ~graph ~flows ~lambda in
      let volume = float_of_int (Tdmd.Instance.total_path_volume inst) in
      let rand = Tdmd.Baselines.random (Rng.create 5) ~k inst in
      let be = Tdmd.Baselines.best_effort ~k inst in
      let gtp = Tdmd.Gtp.run ~budget:k inst in
      Table.add_row t
        [
          Table.cell_float lambda;
          Table.cell_float volume;
          Table.cell_float rand.Tdmd.Baselines.bandwidth;
          Table.cell_float be.Tdmd.Baselines.bandwidth;
          Table.cell_float gtp.Tdmd.Gtp.bandwidth;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (gtp.Tdmd.Gtp.bandwidth /. volume)));
        ])
    [ 0.2; 0.4; 0.6; 0.8 ];
  Table.print t;

  (* Where does GTP put the boxes?  Hubs first - sharing beats earliness
     when the budget is tight. *)
  let inst = Tdmd.Instance.make ~graph ~flows ~lambda:0.5 in
  let gtp = Tdmd.Gtp.run ~budget:k inst in
  Format.printf "@.GTP deployment at lambda=0.5: %a@." Tdmd.Placement.pp
    gtp.Tdmd.Gtp.placement;
  Format.printf "Greedy (1 - 1/e) guarantee held with %d oracle calls.@."
    gtp.Tdmd.Gtp.oracle_calls
