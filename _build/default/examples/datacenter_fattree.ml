(* IDS placement in a fat-tree data center (with capacity extension).

   The paper motivates tree-structured deployments with data-center
   fabrics (Fat-tree, BCube - Sec. 5).  Here hosts of a k=4 fat-tree
   stream telemetry to a collector host; every flow must cross an
   Intrusion Detection System that samples-and-forwards at lambda = 0.3.
   We place IDS instances with GTP, then re-solve under the capacitated
   extension to see how per-box throughput limits spread the deployment.

   Run with:  dune exec examples/datacenter_fattree.exe *)

open Tdmd_prelude
module G = Tdmd_graph.Digraph
module Flow = Tdmd_flow.Flow

let () =
  let ft = Tdmd_topo.Datacenter.fat_tree 4 in
  let g = ft.Tdmd_topo.Datacenter.graph in
  let hosts = ft.Tdmd_topo.Datacenter.hosts in
  let collector = List.hd hosts in
  let rng = Rng.create 99 in
  (* Every other host sends one telemetry flow to the collector along
     the hop-shortest route. *)
  let flows =
    List.filteri (fun i _ -> i > 0) hosts
    |> List.mapi (fun id host ->
           match Tdmd_graph.Bfs.shortest_path g ~src:host ~dst:collector with
           | None -> assert false
           | Some path ->
             Flow.make ~id ~rate:(Rng.int_in rng 1 8) ~path)
  in
  let inst = Tdmd.Instance.make ~graph:g ~flows ~lambda:0.3 in
  Format.printf
    "Fat-tree k=4: %d switches+hosts, %d telemetry flows -> collector %d@."
    (G.vertex_count g) (List.length flows) collector;
  Format.printf "IDS: lambda = 0.3 (sampled forwarding)@.@.";

  let volume = float_of_int (Tdmd.Instance.total_path_volume inst) in
  let t = Table.create [ "k"; "GTP b(P)"; "saved"; "deployment" ] in
  List.iter
    (fun k ->
      let r = Tdmd.Gtp.run ~budget:k inst in
      Table.add_row t
        [
          string_of_int k;
          Table.cell_float r.Tdmd.Gtp.bandwidth;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (r.Tdmd.Gtp.bandwidth /. volume)));
          Format.asprintf "%a" Tdmd.Placement.pp r.Tdmd.Gtp.placement;
        ])
    [ 1; 2; 4; 8 ];
  Table.print t;

  (* Capacity extension: an IDS instance inspects at most [cap] rate
     units, so tight capacities force a wider deployment. *)
  Format.printf "@.Capacitated IDS (k = 4):@.";
  let ct = Table.create [ "capacity"; "bandwidth"; "unserved flows"; "deployment" ] in
  List.iter
    (fun capacity ->
      let r = Tdmd.Capacitated.greedy ~k:4 ~capacity inst in
      Table.add_row ct
        [
          string_of_int capacity;
          Table.cell_float r.Tdmd.Capacitated.bandwidth;
          string_of_int r.Tdmd.Capacitated.unserved_flows;
          Format.asprintf "%a" Tdmd.Placement.pp r.Tdmd.Capacitated.placement;
        ])
    [ 10; 25; 50; 1000 ];
  Table.print ct;
  Format.printf
    "@.Small capacities leave flows uninspected or push IDSs towards the@.";
  Format.printf
    "edge; loose capacities converge to the pure bandwidth-greedy plan@.";
  Format.printf
    "(which, unlike GTP, does not spend picks on covering stragglers).@."
